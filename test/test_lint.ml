(* Tests for the static analyzer (rules MF001-MF010 each triggered by a
   minimal fixture exactly once; every generator and the bundled suite
   lint-clean) and the flow-certificate auditor (rules MF101-MF105; a
   corrupted solution from each of the three solvers is rejected). *)

module Raw = Minflo_netlist.Raw
module Bench = Minflo_netlist.Bench_format
module Verilog = Minflo_netlist.Verilog_format
module Gen = Minflo_netlist.Generators
module Iscas85 = Minflo_netlist.Iscas85
module Tech = Minflo_tech.Tech
module Rule = Minflo_lint.Rule
module Finding = Minflo_lint.Finding
module Lint = Minflo_lint.Lint
module Audit = Minflo_lint.Audit
module Sarif = Minflo_lint.Sarif
module Report = Minflo_lint.Report
module Mcf = Minflo_flow.Mcf
module Simplex = Minflo_flow.Network_simplex
module Ssp = Minflo_flow.Ssp
module Cost_scaling = Minflo_flow.Cost_scaling
module Diag = Minflo_robust.Diag

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let lint ?config text =
  match Bench.parse_raw_string ~name:"fixture" text with
  | Ok raw -> Lint.check ?config raw
  | Error e -> Alcotest.failf "fixture failed to parse: %s" (Diag.to_string e)

let count id findings =
  List.length
    (List.filter (fun (f : Finding.t) -> f.rule.Rule.id = id) findings)

(* ---------- the rule catalog ---------- *)

let test_catalog () =
  check int "twenty-six rules" 26 (List.length Rule.all);
  let ids = List.map (fun (r : Rule.t) -> r.id) Rule.all in
  check bool "ids sorted and unique" true (List.sort_uniq compare ids = ids);
  List.iter
    (fun (r : Rule.t) ->
      match Rule.find r.id with
      | Some r' -> check string ("find " ^ r.id) r.name r'.Rule.name
      | None -> Alcotest.failf "rule %s not found by id" r.id)
    Rule.all;
  check bool "unknown id" true (Rule.find "MF999" = None);
  check int "error outranks warning" 1
    (compare (Rule.severity_rank Error) (Rule.severity_rank Warning));
  check string "sarif level for info" "note" (Rule.sarif_level Info)

(* ---------- one minimal fixture per rule ---------- *)

let test_mf001_cycle () =
  let fs =
    lint
      "INPUT(a)\nOUTPUT(y)\ng1 = AND(g3, a)\ng2 = AND(g1, a)\n\
       g3 = AND(g2, a)\ny = NAND(g1, a)\n"
  in
  check int "one finding" 1 (List.length fs);
  check int "MF001 once" 1 (count "MF001" fs);
  let f = List.hd fs in
  check int "cycle members" 3 (List.length f.Finding.related);
  check int "points at first member" 3 f.Finding.loc.Raw.line;
  check bool "names the loop" true
    (contains f.Finding.message "g1 -> g2 -> g3 -> g1")

let test_mf002_multi_driven () =
  let fs =
    lint "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n"
  in
  check int "one finding" 1 (List.length fs);
  check int "MF002 once" 1 (count "MF002" fs);
  check int "at the second driver" 5 (List.hd fs).Finding.loc.Raw.line

let test_mf002_input_driven () =
  let fs = lint "INPUT(a)\nINPUT(b)\nOUTPUT(b)\nb = NOT(a)\n" in
  check int "MF002 once" 1 (count "MF002" fs)

let test_mf003_undriven () =
  let fs = lint "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n" in
  check int "one finding" 1 (List.length fs);
  check int "MF003 once" 1 (count "MF003" fs);
  check bool "names the signal" true
    (List.mem "ghost" (List.hd fs).Finding.related)

let test_mf004_dangling_input () =
  let fs = lint "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a)\n" in
  check int "one finding" 1 (List.length fs);
  check int "MF004 once" 1 (count "MF004" fs);
  check int "at the declaration" 2 (List.hd fs).Finding.loc.Raw.line

let test_mf005_dead_gate () =
  let fs =
    lint "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ndead = OR(a, b)\n"
  in
  check int "one finding" 1 (List.length fs);
  check int "MF005 once" 1 (count "MF005" fs);
  check bool "names the gate" true
    (List.mem "dead" (List.hd fs).Finding.related)

let test_mf006_duplicate_decl () =
  let fs = lint "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n" in
  check int "one finding" 1 (List.length fs);
  check int "MF006 once" 1 (count "MF006" fs)

let test_mf007_fanout_bound () =
  let text =
    "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\nn2 = NOT(a)\nn3 = NOT(a)\n\
     y = AND(n1, n2, n3)\n"
  in
  let config = { Lint.fanout_bound = Some 2; tech = None } in
  let fs = lint ~config text in
  check int "one finding" 1 (List.length fs);
  check int "MF007 once" 1 (count "MF007" fs);
  (* the same fixture is clean under the default (unbounded) config *)
  check int "opt-in only" 0 (List.length (lint text))

let test_mf008_tech_coverage () =
  let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n" in
  let narrow = { Tech.default_130nm with Tech.max_stack = 2 } in
  let config = { Lint.fanout_bound = None; tech = Some narrow } in
  let fs = lint ~config text in
  check int "one finding" 1 (List.length fs);
  check int "MF008 once" 1 (count "MF008" fs);
  check int "default stack admits it" 0 (List.length (lint text))

let test_mf009_empty_interface () =
  let fs = lint "INPUT(a)\n" in
  check int "MF009 once" 1 (count "MF009" fs);
  let no_inputs = lint "OUTPUT(y)\ny = AND(y, y)\n" in
  check int "MF009 for missing inputs" 1 (count "MF009" no_inputs)

let test_mf010_bad_arity () =
  let fs = lint "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n" in
  check int "one finding" 1 (List.length fs);
  check int "MF010 once" 1 (count "MF010" fs);
  let fs = lint "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n" in
  check int "MF010 for missing fanins" 1 (count "MF010" fs)

(* MF000 is the CLI's mapping of a parse failure; what the library owes it
   is a located error. Both readers must say where the text broke. *)
let test_parse_errors_are_located () =
  (match Bench.parse_raw_string "INPUT(a)\nOUTPUT(y)\ny = WIBBLE(a)\n" with
  | Error (Diag.Parse_error { line; col; _ }) ->
    check int "bench line" 3 line;
    check bool "bench col" true (col > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "unknown gate accepted");
  match
    Verilog.parse_string
      "module m(a, y);\n  input a;\n  output y;\n  always @(a) y = a;\nendmodule\n"
  with
  | Error (Diag.Parse_error { line; col; _ }) ->
    check int "verilog line" 4 line;
    check bool "verilog col" true (col > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "behavioral verilog accepted"

(* ---------- clean circuits stay clean ---------- *)

let assert_clean name nl =
  match Lint.check (Raw.of_netlist nl) with
  | [] -> ()
  | fs -> Alcotest.failf "%s not lint-clean:\n%s" name (Report.render fs)

let test_generators_lint_clean () =
  List.iter
    (fun bits ->
      assert_clean
        (Printf.sprintf "ripple%d" bits)
        (Gen.ripple_carry_adder ~bits ()))
    [ 32; 64; 128; 256 ];
  assert_clean "kogge-stone" (Gen.kogge_stone_adder ~bits:64 ());
  assert_clean "multiplier" (Gen.array_multiplier ~bits:8 ());
  assert_clean "parity" (Gen.parity_tree ~width:16 ());
  assert_clean "sec" (Gen.sec_circuit ~data_bits:16 ());
  assert_clean "alu" (Gen.alu ~width:8 ());
  assert_clean "priority" (Gen.priority_logic ~channels:8 ());
  assert_clean "mux" (Gen.mux_tree ~select_bits:4 ());
  assert_clean "comparator" (Gen.comparator ~width:8 ());
  assert_clean "random-dag"
    (Gen.random_dag ~gates:200 ~inputs:16 ~outputs:8 ~seed:42 ());
  assert_clean "c17" (Gen.c17 ())

let test_suite_lint_clean () =
  List.iter
    (fun ((info : Iscas85.info), nl) -> assert_clean info.Iscas85.name nl)
    (Iscas85.all_circuits ())

(* ---------- the certificate auditor ---------- *)

let arc src dst cap cost = { Mcf.src; dst; cap; cost }

(* 0 -> 1 -> 2, one unit, slack capacity everywhere *)
let path_problem =
  { Mcf.num_nodes = 3;
    arcs = [| arc 0 1 2 1; arc 1 2 2 1 |];
    supply = [| 1; 0; -1 |] }

let solvers =
  [ ("simplex", fun p -> Simplex.solve p);
    ("ssp", fun p -> Ssp.solve p);
    ("cost-scaling", fun p -> Cost_scaling.solve p) ]

let test_audit_accepts_valid () =
  List.iter
    (fun (name, solve) ->
      let sol = solve path_problem in
      match Audit.check path_problem sol with
      | [] -> ()
      | fs -> Alcotest.failf "%s rejected:\n%s" name (Report.render fs))
    solvers

let test_mf101_flow_bounds () =
  let sol = Simplex.solve path_problem in
  sol.Mcf.flow.(0) <- path_problem.Mcf.arcs.(0).Mcf.cap + 5;
  check int "MF101 once" 1 (count "MF101" (Audit.check path_problem sol))

let test_mf102_conservation () =
  let sol = Simplex.solve path_problem in
  let skewed = { path_problem with Mcf.supply = [| 2; 0; -1 |] } in
  let fs = Audit.check skewed sol in
  check int "MF102 once" 1 (count "MF102" fs);
  check int "nothing else" 1 (List.length fs)

let test_mf103_slackness () =
  let sol = Simplex.solve path_problem in
  (* flow on 1 -> 2 is strictly between 0 and cap, so its reduced cost must
     be exactly zero: any nudge of the tail potential breaks one direction *)
  sol.Mcf.potential.(2) <- sol.Mcf.potential.(2) + 1;
  let fs = Audit.check path_problem sol in
  check int "MF103 once" 1 (count "MF103" fs);
  check int "nothing else" 1 (List.length fs)

let test_mf104_objective () =
  let sol = Simplex.solve path_problem in
  let lied = { sol with Mcf.objective = sol.Mcf.objective + 7 } in
  let fs = Audit.check path_problem lied in
  check int "MF104 once" 1 (count "MF104" fs);
  check int "nothing else" 1 (List.length fs)

let test_mf105_not_optimal () =
  let infeasible =
    { Mcf.num_nodes = 2; arcs = [| arc 0 1 1 1 |]; supply = [| 2; -2 |] }
  in
  let sol = Simplex.solve infeasible in
  check bool "not optimal" true (sol.Mcf.status <> Mcf.Optimal);
  let fs = Audit.check infeasible sol in
  check int "MF105 once" 1 (count "MF105" fs);
  check int "other checks skipped" 1 (List.length fs)

let test_audit_rejects_corruption_all_solvers () =
  List.iter
    (fun (name, solve) ->
      let sol = solve path_problem in
      sol.Mcf.flow.(0) <- sol.Mcf.flow.(0) + 1;
      let fs = Audit.check path_problem sol in
      check bool (name ^ " rejected") true (fs <> []);
      check bool
        (name ^ " at error severity")
        true
        (Finding.worst fs = Some Rule.Error))
    solvers

(* the displacement LP is entirely uncapacitated; cost scaling used to
   return a conservation-violating flow on such problems (the clamp in its
   solve is the fix, and this is its regression test) *)
let test_audit_uncapacitated_problem () =
  let inf = Mcf.infinite_capacity in
  let p =
    { Mcf.num_nodes = 3;
      arcs = [| arc 0 1 inf 5; arc 0 2 inf 1; arc 2 1 inf 1 |];
      supply = [| 2; -2; 0 |] }
  in
  List.iter
    (fun (name, solve) ->
      let sol = solve p in
      check int (name ^ " objective") 4 sol.Mcf.objective;
      match Audit.check p sol with
      | [] -> ()
      | fs -> Alcotest.failf "%s rejected:\n%s" name (Report.render fs))
    solvers

let test_audit_caps_violations () =
  let n = 40 in
  let arcs = Array.init n (fun i -> arc 0 1 2 (i + 1)) in
  let p = { Mcf.num_nodes = 2; arcs; supply = [| 2; -2 |] } in
  let sol = Simplex.solve p in
  Array.iteri (fun i _ -> sol.Mcf.flow.(i) <- -1) sol.Mcf.flow;
  let fs = Audit.check p sol in
  let bounds = count "MF101" fs in
  check bool "truncated" true (bounds < n);
  check bool "truncation is announced" true
    (List.exists (fun (f : Finding.t) -> contains f.Finding.message "truncated") fs)

(* ---------- rendering ---------- *)

let cycle_findings () =
  let text =
    "INPUT(a)\nOUTPUT(y)\ng1 = AND(g2, a)\ng2 = AND(g1, a)\ny = NAND(g1, a)\n"
  in
  match Bench.parse_raw_string ~name:"fixture" text with
  | Ok raw -> Lint.check { raw with Raw.file = Some "fixture.bench" }
  | Error e -> Alcotest.failf "fixture failed to parse: %s" (Diag.to_string e)

let test_report_text () =
  let fs = cycle_findings () in
  let text = Report.render fs in
  check bool "rule id" true (contains text "MF001");
  check bool "severity" true (contains text "error");
  check bool "location" true (contains text "fixture.bench:3:1");
  check bool "summary" true (contains text "1 error(s), 0 warning(s)");
  check string "clean" "no findings\n" (Report.render []);
  check int "exit 2 on error" 2 (Report.exit_code fs);
  check int "exit 0 clean" 0 (Report.exit_code [])

let test_sarif_shape () =
  let doc = Sarif.render (cycle_findings ()) in
  List.iter
    (fun needle -> check bool needle true (contains doc needle))
    [ "\"version\": \"2.1.0\"";
      "sarif-schema-2.1.0";
      "minflo-lint";
      "\"ruleId\": \"MF001\"";
      "\"level\": \"error\"";
      "\"startLine\": 3";
      "MF105" (* the whole catalog rides along in tool.driver.rules *) ];
  let empty = Sarif.render [] in
  check bool "empty run still a document" true
    (contains empty "\"results\": []");
  (* crude but effective structural check: braces and brackets balance *)
  let balance open_c close_c s =
    String.fold_left
      (fun n c -> if c = open_c then n + 1 else if c = close_c then n - 1 else n)
      0 s
  in
  check int "braces balance" 0 (balance '{' '}' doc);
  check int "brackets balance" 0 (balance '[' ']' doc)

let () =
  Alcotest.run "lint"
    [ ( "catalog",
        [ Alcotest.test_case "rule catalog" `Quick test_catalog ] );
      ( "rules",
        [ Alcotest.test_case "MF001 combinational cycle" `Quick test_mf001_cycle;
          Alcotest.test_case "MF002 multi-driven" `Quick test_mf002_multi_driven;
          Alcotest.test_case "MF002 gate drives an input" `Quick
            test_mf002_input_driven;
          Alcotest.test_case "MF003 undriven" `Quick test_mf003_undriven;
          Alcotest.test_case "MF004 dangling input" `Quick
            test_mf004_dangling_input;
          Alcotest.test_case "MF005 dead gate" `Quick test_mf005_dead_gate;
          Alcotest.test_case "MF006 duplicate declaration" `Quick
            test_mf006_duplicate_decl;
          Alcotest.test_case "MF007 fanout bound" `Quick test_mf007_fanout_bound;
          Alcotest.test_case "MF008 tech coverage" `Quick test_mf008_tech_coverage;
          Alcotest.test_case "MF009 empty interface" `Quick
            test_mf009_empty_interface;
          Alcotest.test_case "MF010 bad arity" `Quick test_mf010_bad_arity;
          Alcotest.test_case "parse errors carry line and column" `Quick
            test_parse_errors_are_located ] );
      ( "clean",
        [ Alcotest.test_case "all generators" `Quick test_generators_lint_clean;
          Alcotest.test_case "bundled ISCAS85 suite" `Quick
            test_suite_lint_clean ] );
      ( "audit",
        [ Alcotest.test_case "accepts valid certificates" `Quick
            test_audit_accepts_valid;
          Alcotest.test_case "MF101 flow bounds" `Quick test_mf101_flow_bounds;
          Alcotest.test_case "MF102 conservation" `Quick test_mf102_conservation;
          Alcotest.test_case "MF103 slackness" `Quick test_mf103_slackness;
          Alcotest.test_case "MF104 objective" `Quick test_mf104_objective;
          Alcotest.test_case "MF105 non-optimal status" `Quick
            test_mf105_not_optimal;
          Alcotest.test_case "corruption caught for all three solvers" `Quick
            test_audit_rejects_corruption_all_solvers;
          Alcotest.test_case "uncapacitated displacement-style LP" `Quick
            test_audit_uncapacitated_problem;
          Alcotest.test_case "violation cap announces truncation" `Quick
            test_audit_caps_violations ] );
      ( "render",
        [ Alcotest.test_case "text report" `Quick test_report_text;
          Alcotest.test_case "SARIF 2.1.0 shape" `Quick test_sarif_shape ] ) ]
