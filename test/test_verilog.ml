(* Tests for the structural Verilog reader/writer. *)

module V = Minflo_netlist.Verilog_format
module Netlist = Minflo_netlist.Netlist
module Gen = Minflo_netlist.Generators
module Check = Minflo_bdd.Check
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let c17_v =
  {|// ISCAS85 c17 in structural verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
|}

let test_parse_c17 () =
  let nl = V.parse_string_exn c17_v in
  check int "gates" 6 (Netlist.gate_count nl);
  check int "inputs" 5 (Netlist.input_count nl);
  check int "outputs" 2 (List.length (Netlist.outputs nl));
  (* and it is formally the same circuit as the built-in generator *)
  check bool "matches builtin c17" true
    (Check.equivalent nl (Gen.c17 ()) = Check.Equivalent)

let test_parse_without_instance_names () =
  let nl =
    V.parse_string_exn
      "module m (a, b, y);\n input a, b;\n output y;\n nand (y, a, b);\nendmodule\n"
  in
  check int "gates" 1 (Netlist.gate_count nl)

let test_parse_block_comments_and_forward_refs () =
  let nl =
    V.parse_string_exn
      "module m (a, y); /* ports */ input a; output y;\n\
       wire t;\n\
       not (y, t); // uses t before its driver appears\n\
       not (t, a);\n\
       endmodule"
  in
  check int "gates" 2 (Netlist.gate_count nl)

let expect_error text =
  match V.parse_string text with
  | Error (Minflo_robust.Diag.Parse_error { line; _ }) ->
    check bool "line number is positive" true (line >= 1)
  | Error e -> Alcotest.fail ("expected Parse_error, got " ^ Minflo_robust.Diag.to_string e)
  | Ok _ -> Alcotest.fail "expected parse error"

let test_parse_errors () =
  expect_error "module m (a, y); input a; output y; assign y = a;\nendmodule";
  expect_error "module m (a, y); input a; output y; frob (y, a);\nendmodule";
  expect_error "module m (a, y); input a; output y; not (y, z);\nendmodule";
  expect_error "not (y, a);";
  expect_error "module m (a, y); input a; output y; not (y, a)\n";
  (* cycle *)
  expect_error
    "module m (a, y); input a; output y; wire t;\n\
     nand (y, a, t); nand (t, a, y); endmodule";
  (* unterminated comment *)
  expect_error "module m (a, y); /* input a; output y;"

let test_roundtrip_generators () =
  List.iter
    (fun nl ->
      let nl2 = V.parse_string_exn (V.to_string nl) in
      check int "gates" (Netlist.gate_count nl) (Netlist.gate_count nl2);
      check bool "formally equivalent" true (Check.equivalent nl nl2 = Check.Equivalent))
    [ Gen.c17 ();
      Gen.ripple_carry_adder ~bits:4 ();
      Gen.parity_tree ~width:5 ();
      Gen.alu ~width:3 () ]

let test_print_stability () =
  (* the printed form is a fixpoint: parse -> print -> parse -> print
     yields the same text, so nothing drifts across write/read cycles *)
  List.iter
    (fun nl ->
      let first = V.to_string nl in
      let second = V.to_string (V.parse_string_exn first) in
      check Alcotest.string "second print equals first" first second;
      let third = V.to_string (V.parse_string_exn second) in
      check Alcotest.string "third print equals second" second third)
    [ Gen.c17 ();
      Gen.ripple_carry_adder ~bits:8 ();
      Gen.parity_tree ~width:5 ();
      Gen.alu ~width:4 () ]

let test_sanitization () =
  (* bench-style numeric names must be escaped into legal verilog *)
  let nl = Netlist.create ~name:"123bad name" () in
  let a = Netlist.add_input nl "1" in
  let g = Netlist.add_gate nl "22" Minflo_netlist.Gate.Not [ a ] in
  Netlist.mark_output nl g;
  Netlist.validate nl;
  let text = V.to_string nl in
  let nl2 = V.parse_string_exn text in
  check bool "roundtrips" true (Check.equivalent nl nl2 = Check.Equivalent)

let prop_verilog_roundtrip_random =
  QCheck.Test.make ~name:"verilog round-trips random netlists (formally)"
    ~count:30 QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:25 ~inputs:5 ~outputs:3 ~seed:(seed + 555) () in
      let nl2 = V.parse_string_exn (V.to_string nl) in
      Check.equivalent nl nl2 = Check.Equivalent)

let prop_lexer_never_crashes =
  (* random byte soup must become a typed Parse_error (or parse), never an
     exception *)
  QCheck.Test.make ~name:"parser turns garbage into Parse_error, not crashes"
    ~count:200
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun text ->
      match V.parse_string text with
      | Ok _ | Error (Minflo_robust.Diag.Parse_error _) -> true
      | Error _ -> false
      | exception _ -> false)

let prop_bench_parser_never_crashes =
  QCheck.Test.make ~name:"bench parser turns garbage into Parse_error too"
    ~count:200
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun text ->
      match Minflo_netlist.Bench_format.parse_string text with
      | Ok _ | Error (Minflo_robust.Diag.Parse_error _) -> true
      | Error _ -> false
      | exception _ -> false)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "verilog"
    [ ( "parse",
        [ tc "c17" `Quick test_parse_c17;
          tc "anonymous instances" `Quick test_parse_without_instance_names;
          tc "comments/forward refs" `Quick test_parse_block_comments_and_forward_refs;
          tc "errors" `Quick test_parse_errors ] );
      ( "write",
        [ tc "roundtrip generators" `Quick test_roundtrip_generators;
          tc "print stability" `Quick test_print_stability;
          tc "sanitization" `Quick test_sanitization;
          QCheck_alcotest.to_alcotest prop_verilog_roundtrip_random ] );
      ( "robustness",
        [ QCheck_alcotest.to_alcotest prop_lexer_never_crashes;
          QCheck_alcotest.to_alcotest prop_bench_parser_never_crashes ] ) ]
