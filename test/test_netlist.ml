(* Tests for the netlist substrate: structure, parser round-trips, and
   functional correctness of every generator (simulation vs arithmetic). *)

module Gate = Minflo_netlist.Gate
module Netlist = Minflo_netlist.Netlist
module Bench = Minflo_netlist.Bench_format
module Gen = Minflo_netlist.Generators
module Compose = Minflo_netlist.Compose
module Transform = Minflo_netlist.Transform
module Iscas85 = Minflo_netlist.Iscas85
module Rng = Minflo_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- Gate ---------- *)

let test_gate_eval () =
  check bool "and" true (Gate.eval Gate.And [| true; true |]);
  check bool "and f" false (Gate.eval Gate.And [| true; false |]);
  check bool "nand" false (Gate.eval Gate.Nand [| true; true |]);
  check bool "or" true (Gate.eval Gate.Or [| false; true |]);
  check bool "nor" true (Gate.eval Gate.Nor [| false; false |]);
  check bool "not" true (Gate.eval Gate.Not [| false |]);
  check bool "buf" false (Gate.eval Gate.Buf [| false |]);
  check bool "xor3" true (Gate.eval Gate.Xor [| true; true; true |]);
  check bool "xnor" true (Gate.eval Gate.Xnor [| true; true |])

let test_gate_strings () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> check bool "roundtrip" true (k = k')
      | None -> Alcotest.fail "roundtrip failed")
    Gate.all;
  check bool "inv alias" true (Gate.of_string "INV" = Some Gate.Not);
  check bool "lowercase" true (Gate.of_string "nand" = Some Gate.Nand);
  check bool "unknown" true (Gate.of_string "FOO" = None)

let test_gate_arity () =
  Alcotest.check_raises "not arity"
    (Invalid_argument "Gate.eval: NOT takes <= 1 inputs, got 2") (fun () ->
      ignore (Gate.eval Gate.Not [| true; false |]));
  Alcotest.check_raises "and arity"
    (Invalid_argument "Gate.eval: AND needs >= 2 inputs, got 1") (fun () ->
      ignore (Gate.eval Gate.And [| true |]))

(* ---------- Netlist core ---------- *)

let test_netlist_build () =
  let nl = Netlist.create ~name:"t" () in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let g = Netlist.add_gate nl "g" Gate.Nand [ a; b ] in
  Netlist.mark_output nl g;
  Netlist.validate nl;
  check int "nodes" 3 (Netlist.node_count nl);
  check int "gates" 1 (Netlist.gate_count nl);
  check int "inputs" 2 (Netlist.input_count nl);
  check (Alcotest.list int) "fanins" [ a; b ] (Netlist.fanins nl g);
  check (Alcotest.list int) "fanouts a" [ g ] (Netlist.fanouts nl a);
  check bool "is_output" true (Netlist.is_output nl g);
  check bool "find" true (Netlist.find nl "g" = Some g)

let test_netlist_duplicate_name () =
  let nl = Netlist.create () in
  ignore (Netlist.add_input nl "a");
  Alcotest.check_raises "dup" (Invalid_argument "Netlist: duplicate node name \"a\"")
    (fun () -> ignore (Netlist.add_input nl "a"))

let test_netlist_bad_fanin () =
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  Alcotest.check_raises "unknown fanin"
    (Invalid_argument "Netlist: gate \"g\" has unknown fanin 7") (fun () ->
      ignore (Netlist.add_gate nl "g" Gate.Nand [ a; 7 ]))

let test_netlist_validate_dead_gate () =
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let g = Netlist.add_gate nl "g" Gate.Nand [ a; b ] in
  let dead = Netlist.add_gate nl "dead" Gate.Nor [ a; b ] in
  ignore dead;
  Netlist.mark_output nl g;
  Alcotest.check_raises "dead gate"
    (Invalid_argument "Netlist.validate: gate \"dead\" drives no primary output")
    (fun () -> Netlist.validate nl)

let test_netlist_levels () =
  let nl = Gen.c17 () in
  let levels = Netlist.levels nl in
  let g22 = Option.get (Netlist.find nl "22") in
  check int "depth of 22" 3 levels.(g22);
  check int "circuit depth" 3 (Netlist.depth nl)

let test_netlist_stats () =
  let nl = Gen.c17 () in
  let s = Netlist.stats nl in
  check int "gates" 6 s.num_gates;
  check int "inputs" 5 s.num_inputs;
  check int "outputs" 2 s.num_outputs;
  check bool "all nand" true (s.gates_by_kind = [ (Gate.Nand, 6) ])

(* ---------- bench format ---------- *)

let c17_text =
  "# c17\n\
   INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
   OUTPUT(22)\nOUTPUT(23)\n\
   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
   19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n"

let test_bench_parse () =
  let nl = Bench.parse_string_exn ~name:"c17" c17_text in
  check int "gates" 6 (Netlist.gate_count nl);
  check int "inputs" 5 (Netlist.input_count nl);
  check int "outputs" 2 (List.length (Netlist.outputs nl))

let test_bench_forward_refs () =
  (* gates may be declared before their fanins textually *)
  let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = NAND(a, a)\n" in
  let nl = Bench.parse_string_exn text in
  check int "gates" 2 (Netlist.gate_count nl)

let test_bench_roundtrip () =
  let nl = Gen.c17 () in
  let nl2 = Bench.parse_string_exn (Bench.to_string nl) in
  check int "gates" (Netlist.gate_count nl) (Netlist.gate_count nl2);
  check int "inputs" (Netlist.input_count nl) (Netlist.input_count nl2);
  (* simulation agreement on all 32 input patterns *)
  for pattern = 0 to 31 do
    let bits = Array.init 5 (fun i -> (pattern lsr i) land 1 = 1) in
    let v1 = Netlist.simulate nl bits and v2 = Netlist.simulate nl2 bits in
    List.iter2
      (fun o1 o2 -> check bool "same output" v1.(o1) v2.(o2))
      (Netlist.outputs nl) (Netlist.outputs nl2)
  done

let test_bench_errors () =
  let expect_error text =
    match Bench.parse_string text with
    | Error (Minflo_robust.Diag.Parse_error { line; _ }) ->
      check bool "line number is positive" true (line >= 1)
    | Error e ->
      Alcotest.fail ("expected Parse_error, got " ^ Minflo_robust.Diag.to_string e)
    | Ok _ -> Alcotest.fail "expected parse error"
  in
  expect_error "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NAND(a\n";
  expect_error "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\n";
  (* cyclic definition *)
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NAND(a, z)\nz = NAND(a, y)\n"

let deep_chain_bench n =
  let b = Buffer.create (n * 16) in
  Buffer.add_string b "INPUT(x0)\n";
  Buffer.add_string b (Printf.sprintf "OUTPUT(x%d)\n" n);
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "x%d = NOT(x%d)\n" i (i - 1))
  done;
  Buffer.contents b

let test_bench_deep_chain () =
  (* elaboration is iterative: a 20k-deep inverter chain must not blow
     the stack (the old recursive resolver overflowed near ~10k) *)
  List.iter
    (fun n ->
      match Bench.parse_string (deep_chain_bench n) with
      | Ok nl ->
        check int (Printf.sprintf "%d gates" n) n (Netlist.gate_count nl);
        check int (Printf.sprintf "depth %d" n) n (Netlist.depth nl)
      | Error e ->
        Alcotest.failf "depth %d rejected: %s" n
          (Minflo_robust.Diag.to_string e))
    [ 10_000; 20_000 ]

let test_bench_token_cap () =
  (* a pathological token (name longer than Raw.max_token_length) is a
     parse error with a line number, not memory exhaustion or a crash *)
  let cap = Minflo_netlist.Raw.max_token_length in
  let huge = String.make (cap + 1) 'a' in
  let expect_error text =
    match Bench.parse_string text with
    | Error (Minflo_robust.Diag.Parse_error { line; _ }) ->
      check bool "line number is positive" true (line >= 1)
    | Error e ->
      Alcotest.fail
        ("expected Parse_error, got " ^ Minflo_robust.Diag.to_string e)
    | Ok _ -> Alcotest.fail "oversized token accepted"
  in
  expect_error (Printf.sprintf "INPUT(%s)\nOUTPUT(y)\ny = NOT(%s)\n" huge huge);
  expect_error (Printf.sprintf "INPUT(a)\nOUTPUT(%s)\n%s = NOT(a)\n" huge huge);
  (* a name exactly at the cap is fine *)
  let edge = String.make cap 'a' in
  (match
     Bench.parse_string
       (Printf.sprintf "INPUT(%s)\nOUTPUT(y)\ny = NOT(%s)\n" edge edge)
   with
  | Ok nl -> check int "cap-length name accepted" 1 (Netlist.gate_count nl)
  | Error e ->
    Alcotest.failf "cap-length name rejected: %s"
      (Minflo_robust.Diag.to_string e))

let test_verilog_deep_and_token_cap () =
  let n = 10_000 in
  let b = Buffer.create (n * 24) in
  Buffer.add_string b "module chain(x0, y);\n  input x0;\n  output y;\n";
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "  wire x%d;\n" i)
  done;
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "  not g%d(x%d, x%d);\n" i i (i - 1))
  done;
  Buffer.add_string b (Printf.sprintf "  buf gy(y, x%d);\nendmodule\n" n);
  (match Minflo_netlist.Verilog_format.parse_string (Buffer.contents b) with
  | Ok nl ->
    check bool "10k-deep verilog chain parses" true
      (Netlist.gate_count nl >= n)
  | Error e ->
    Alcotest.failf "deep verilog rejected: %s" (Minflo_robust.Diag.to_string e));
  let huge = String.make (Minflo_netlist.Raw.max_token_length + 1) 'z' in
  match
    Minflo_netlist.Verilog_format.parse_string
      (Printf.sprintf
         "module m(a, y);\n  input a;\n  output y;\n  wire %s;\n  not g1(%s, a);\n  buf g2(y, %s);\nendmodule\n"
         huge huge huge)
  with
  | Error (Minflo_robust.Diag.Parse_error _) -> ()
  | Error e ->
    Alcotest.failf "expected Parse_error, got %s"
      (Minflo_robust.Diag.to_string e)
  | Ok _ -> Alcotest.fail "oversized verilog token accepted"

let test_bench_roundtrip_suite () =
  (* writer/parser agree structurally on a large generated circuit *)
  let nl = Gen.alu ~width:4 () in
  let nl2 = Bench.parse_string_exn (Bench.to_string nl) in
  check int "gates" (Netlist.gate_count nl) (Netlist.gate_count nl2);
  check int "depth" (Netlist.depth nl) (Netlist.depth nl2)

let test_bench_print_stability () =
  (* the printed form is a fixpoint: parse -> print -> parse -> print
     yields the same text — nothing (ordering, names, formatting) drifts
     across a write/read cycle, so checkpointed circuit hashes over the
     rendering are stable *)
  List.iter
    (fun nl ->
      let first = Bench.to_string nl in
      let second = Bench.to_string (Bench.parse_string_exn first) in
      check Alcotest.string "second print equals first" first second;
      let third = Bench.to_string (Bench.parse_string_exn second) in
      check Alcotest.string "third print equals second" second third)
    [ Gen.c17 ();
      Gen.ripple_carry_adder ~bits:8 ();
      Gen.alu ~width:4 ();
      Iscas85.circuit "c432" ]

(* ---------- generator functional correctness ---------- *)

let out_values nl values = List.map (fun o -> values.(o)) (Netlist.outputs nl)

(* interpret a list of bools as a little-endian integer *)
let to_int bits = List.fold_right (fun b acc -> (2 * acc) + if b then 1 else 0) bits 0

let adder_case style bits rng =
  let nl = Gen.ripple_carry_adder ~style ~bits () in
  let a = Rng.int rng (1 lsl bits) and b = Rng.int rng (1 lsl bits) in
  let cin = Rng.bool rng in
  (* inputs in order a0..a(n-1), b0.., cin *)
  let in_bits =
    Array.init ((2 * bits) + 1) (fun i ->
        if i < bits then (a lsr i) land 1 = 1
        else if i < 2 * bits then (b lsr (i - bits)) land 1 = 1
        else cin)
  in
  let values = Netlist.simulate nl in_bits in
  (* outputs: s0..s(n-1), cout *)
  let result = to_int (out_values nl values) in
  let expected = a + b + if cin then 1 else 0 in
  result = expected

let prop_adder_compact =
  QCheck.Test.make ~name:"ripple adder computes a+b+cin (compact)" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1) in
      adder_case `Compact (1 + Rng.int rng 12) rng)

let prop_adder_nand =
  QCheck.Test.make ~name:"ripple adder computes a+b+cin (nand)" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1000) in
      adder_case `Nand (1 + Rng.int rng 12) rng)

let ks_case style bits rng =
  let nl = Gen.kogge_stone_adder ~style ~bits () in
  let a = Rng.int rng (1 lsl bits) and b = Rng.int rng (1 lsl bits) in
  let cin = Rng.bool rng in
  let in_bits =
    Array.init ((2 * bits) + 1) (fun i ->
        if i < bits then (a lsr i) land 1 = 1
        else if i < 2 * bits then (b lsr (i - bits)) land 1 = 1
        else cin)
  in
  let values = Netlist.simulate nl in_bits in
  to_int (out_values nl values) = a + b + if cin then 1 else 0

let prop_kogge_stone =
  QCheck.Test.make ~name:"Kogge-Stone adder computes a+b+cin" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 77) in
      ks_case `Compact (1 + Rng.int rng 12) rng)

let prop_kogge_stone_log_depth =
  QCheck.Test.make ~name:"Kogge-Stone depth grows logarithmically" ~count:20
    QCheck.small_nat (fun seed ->
      let bits = 4 + (seed mod 28) in
      let ks = Gen.kogge_stone_adder ~bits () in
      let rc = Gen.ripple_carry_adder ~bits () in
      Netlist.depth ks
      <= 4 + (3 * int_of_float (ceil (log (float_of_int bits) /. log 2.0)))
      && (bits < 8 || Netlist.depth ks < Netlist.depth rc))

let mult_case style bits rng =
  let nl = Gen.array_multiplier ~style ~bits () in
  let a = Rng.int rng (1 lsl bits) and b = Rng.int rng (1 lsl bits) in
  let in_bits =
    Array.init (2 * bits) (fun i ->
        if i < bits then (a lsr i) land 1 = 1 else (b lsr (i - bits)) land 1 = 1)
  in
  let values = Netlist.simulate nl in_bits in
  to_int (out_values nl values) = a * b

let prop_multiplier_compact =
  QCheck.Test.make ~name:"array multiplier computes a*b (compact)" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 2) in
      mult_case `Compact (2 + Rng.int rng 7) rng)

let prop_multiplier_nand =
  QCheck.Test.make ~name:"array multiplier computes a*b (nand)" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 3) in
      mult_case `Nand (2 + Rng.int rng 7) rng)

let prop_parity =
  QCheck.Test.make ~name:"parity tree computes xor-reduce" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 4) in
      let width = 2 + Rng.int rng 20 in
      let nl = Gen.parity_tree ~width () in
      let bits = Array.init width (fun _ -> Rng.bool rng) in
      let expected = Array.fold_left (fun acc b -> acc <> b) false bits in
      let values = Netlist.simulate nl bits in
      match out_values nl values with
      | [ p; np ] -> p = expected && np = not expected
      | _ -> false)

let prop_sec_corrects_single_errors =
  QCheck.Test.make ~name:"SEC circuit corrects any single data-bit flip"
    ~count:100 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 5) in
      let d = 4 + Rng.int rng 28 in
      let nl = Gen.sec_circuit ~data_bits:d () in
      let nchecks = Netlist.input_count nl - d in
      let data = Array.init d (fun _ -> Rng.bool rng) in
      let flip = Rng.int rng d in
      let corrupted = Array.mapi (fun j v -> if j = flip then not v else v) data in
      (* check inputs carry the parity of their data group, using the same
         published code assignment as the generator *)
      let codes = Minflo_netlist.Sec_codes.weight2 ~checks:nchecks ~count:d in
      let chk =
        Array.init nchecks (fun k ->
            let parity = ref false in
            Array.iteri (fun j v -> if (codes.(j) lsr k) land 1 = 1 && v then parity := not !parity) data;
            !parity)
      in
      let input = Array.append corrupted chk in
      let values = Netlist.simulate nl input in
      let outs = Array.of_list (out_values nl values) in
      Array.length outs = d && Array.for_all2 (fun o v -> o = v) outs data)

let prop_comparator =
  QCheck.Test.make ~name:"comparator computes eq and lt" ~count:150
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 6) in
      let width = 1 + Rng.int rng 10 in
      let nl = Gen.comparator ~width () in
      let a = Rng.int rng (1 lsl width) and b = Rng.int rng (1 lsl width) in
      let bits =
        Array.init (2 * width) (fun i ->
            if i < width then (a lsr i) land 1 = 1 else (b lsr (i - width)) land 1 = 1)
      in
      let values = Netlist.simulate nl bits in
      match out_values nl values with
      | [ eq; lt ] -> eq = (a = b) && lt = (a < b)
      | _ -> false)

let prop_mux_tree =
  QCheck.Test.make ~name:"mux tree selects the addressed input" ~count:150
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 7) in
      let sel_bits = 1 + Rng.int rng 5 in
      let ways = 1 lsl sel_bits in
      let nl = Gen.mux_tree ~select_bits:sel_bits () in
      let data = Array.init ways (fun _ -> Rng.bool rng) in
      let sel = Rng.int rng ways in
      let bits =
        Array.init (ways + sel_bits) (fun i ->
            if i < ways then data.(i) else (sel lsr (i - ways)) land 1 = 1)
      in
      let values = Netlist.simulate nl bits in
      match out_values nl values with
      | [ out ] -> out = data.(sel)
      | _ -> false)

let prop_alu =
  QCheck.Test.make ~name:"ALU computes add/and/or/xor per opcode" ~count:150
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 8) in
      let width = 1 + Rng.int rng 8 in
      let nl = Gen.alu ~width () in
      let a = Rng.int rng (1 lsl width) and b = Rng.int rng (1 lsl width) in
      let cin = Rng.bool rng in
      let op = Rng.int rng 4 in
      (* inputs: a*, b*, cin, op0, op1 *)
      let bits =
        Array.init ((2 * width) + 3) (fun i ->
            if i < width then (a lsr i) land 1 = 1
            else if i < 2 * width then (b lsr (i - width)) land 1 = 1
            else if i = 2 * width then cin
            else if i = (2 * width) + 1 then op land 1 = 1
            else op land 2 = 2)
      in
      let values = Netlist.simulate nl bits in
      let outs = out_values nl values in
      (* outputs: result bits, carry-out, zero flag *)
      let result_bits = List.filteri (fun i _ -> i < width) outs in
      let result = to_int result_bits in
      let zero = List.nth outs (width + 1) in
      let mask = (1 lsl width) - 1 in
      let expected =
        match op with
        | 0 -> (a + b + if cin then 1 else 0) land mask
        | 1 -> a land b
        | 2 -> a lor b
        | _ -> a lxor b
      in
      result = expected && zero = (result = 0))

let prop_priority_logic =
  QCheck.Test.make ~name:"priority logic grants the highest active channel"
    ~count:100 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 10) in
      let channels = 2 + Rng.int rng 12 in
      let ngroups = (channels + 2) / 3 in
      let nl = Gen.priority_logic ~channels () in
      let req = Array.init channels (fun _ -> Rng.bool rng) in
      let en = Array.init ngroups (fun _ -> Rng.bool rng) in
      let values = Netlist.simulate nl (Array.append req en) in
      let outs = out_values nl values in
      (* reference semantics *)
      let active i = req.(i) && en.(i / 3) in
      let winner =
        let rec find i = if i < 0 then None else if active i then Some i else find (i - 1) in
        find (channels - 1)
      in
      let bits = int_of_float (ceil (log (float_of_int channels) /. log 2.0)) in
      (* outputs: encoded index bits (for bit positions with members), then
         valid, then one ack per group *)
      let enc_bits =
        List.filter
          (fun k -> List.exists (fun i -> (i lsr k) land 1 = 1) (List.init channels Fun.id))
          (List.init bits Fun.id)
      in
      let expected_enc =
        List.map
          (fun k -> match winner with Some w -> (w lsr k) land 1 = 1 | None -> false)
          enc_bits
      in
      let expected_valid = winner <> None in
      let expected_acks =
        List.init ngroups (fun g ->
            match winner with Some w -> w / 3 <> g | None -> true)
      in
      outs = expected_enc @ (expected_valid :: expected_acks))

let prop_transform_preserves_function =
  QCheck.Test.make ~name:"expand_xor and to_nand_inv preserve the function"
    ~count:60 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 9) in
      let nl = Gen.random_dag ~gates:40 ~inputs:6 ~outputs:4 ~seed:(seed + 100) () in
      let variants = [ Transform.expand_xor nl; Transform.to_nand_inv nl ] in
      let ok = ref true in
      for _ = 1 to 16 do
        let bits = Array.init (Netlist.input_count nl) (fun _ -> Rng.bool rng) in
        let base = Netlist.simulate nl bits in
        let base_outs = out_values nl base in
        List.iter
          (fun v ->
            let values = Netlist.simulate v bits in
            if out_values v values <> base_outs then ok := false)
          variants
      done;
      !ok)

let prop_random_dag_valid =
  QCheck.Test.make ~name:"random DAGs validate and are acyclic" ~count:60
    QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:60 ~inputs:8 ~outputs:6 ~seed () in
      Netlist.validate nl;
      Minflo_graph.Topo.is_dag (Netlist.to_digraph nl))

(* ---------- Transform.sweep_dead ---------- *)

let test_sweep_dead_drops_linter_set () =
  let nl = Netlist.create ~name:"deadish" () in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let g = Netlist.add_gate nl "g" Gate.Nand [ a; b ] in
  Netlist.mark_output nl g;
  let d1 = Netlist.add_gate nl "d1" Gate.Or [ a; b ] in
  ignore (Netlist.add_gate nl "d2" Gate.Not [ d1 ]);
  let doomed =
    Minflo_lint.Lint.dead_gates (Minflo_netlist.Raw.of_netlist nl)
  in
  check (Alcotest.list Alcotest.string) "linter names the dead set"
    [ "d1"; "d2" ] (List.sort compare doomed);
  let swept = Transform.sweep_dead nl in
  check int "gates" 1 (Netlist.gate_count swept);
  check int "inputs kept" 2 (Netlist.input_count swept);
  List.iter
    (fun nm -> check bool ("dropped " ^ nm) true (Netlist.find swept nm = None))
    doomed;
  check bool "live gate kept" true (Netlist.find swept "g" <> None)

(* the suite has no dead logic, so the sweep must be a structural no-op:
   identical gate/node counts and bit-identical minimum area and Dmin *)
let test_sweep_dead_invariant_on_suite () =
  List.iter
    (fun ((info : Iscas85.info), nl) ->
      let swept = Transform.sweep_dead nl in
      check int (info.Iscas85.name ^ " gates") (Netlist.gate_count nl)
        (Netlist.gate_count swept);
      check int (info.Iscas85.name ^ " nodes") (Netlist.node_count nl)
        (Netlist.node_count swept);
      let tech = Minflo_tech.Tech.default_130nm in
      let m = Minflo_tech.Elmore.of_netlist tech nl in
      let m' = Minflo_tech.Elmore.of_netlist tech swept in
      check (Alcotest.float 1e-9) (info.Iscas85.name ^ " min area")
        (Minflo_sizing.Sweep.min_area m) (Minflo_sizing.Sweep.min_area m');
      check (Alcotest.float 1e-9) (info.Iscas85.name ^ " dmin")
        (Minflo_sizing.Sweep.dmin m) (Minflo_sizing.Sweep.dmin m'))
    (Iscas85.all_circuits ())

(* ---------- compose / iscas85 ---------- *)

let test_merge () =
  let a = Gen.c17 () in
  let b = Gen.parity_tree ~width:4 () in
  let m = Compose.merge ~name:"both" [ a; b ] in
  check int "gates" (Netlist.gate_count a + Netlist.gate_count b) (Netlist.gate_count m);
  check int "inputs" (Netlist.input_count a + Netlist.input_count b) (Netlist.input_count m);
  check int "outputs" 4 (List.length (Netlist.outputs m))

let test_pad_random_exact () =
  let nl = Gen.c17 () in
  List.iter
    (fun target ->
      let padded = Compose.pad_random nl ~target_gates:target ~seed:5 () in
      check int (Printf.sprintf "padded to %d" target) target (Netlist.gate_count padded);
      Netlist.validate padded)
    [ 7; 8; 9; 20; 101 ]

let test_pad_noop () =
  let nl = Gen.c17 () in
  let same = Compose.pad_random nl ~target_gates:3 ~seed:5 () in
  check int "unchanged" 6 (Netlist.gate_count same)

let test_iscas85_counts () =
  List.iter
    (fun (info : Iscas85.info) ->
      if String.length info.name > 1 && info.name.[0] = 'c' then begin
        let nl = Iscas85.circuit info.name in
        check int (info.name ^ " gate count") info.gates_published (Netlist.gate_count nl)
      end)
    Iscas85.suite

let test_iscas85_deterministic () =
  let a = Iscas85.circuit "c432" and b = Iscas85.circuit "c432" in
  check int "same gates" (Netlist.gate_count a) (Netlist.gate_count b);
  check int "same depth" (Netlist.depth a) (Netlist.depth b);
  let bits = Array.make (Netlist.input_count a) true in
  let va = Netlist.simulate a bits and vb = Netlist.simulate b bits in
  List.iter2
    (fun oa ob -> check bool "same function" va.(oa) vb.(ob))
    (Netlist.outputs a) (Netlist.outputs b)

let test_iscas85_unknown () =
  Alcotest.check_raises "unknown" (Invalid_argument "Iscas85.circuit: unknown circuit \"c9999\"")
    (fun () -> ignore (Iscas85.circuit "c9999"))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "netlist"
    [ ( "gate",
        [ tc "eval" `Quick test_gate_eval;
          tc "strings" `Quick test_gate_strings;
          tc "arity" `Quick test_gate_arity ] );
      ( "netlist",
        [ tc "build" `Quick test_netlist_build;
          tc "duplicate name" `Quick test_netlist_duplicate_name;
          tc "bad fanin" `Quick test_netlist_bad_fanin;
          tc "dead gate" `Quick test_netlist_validate_dead_gate;
          tc "levels" `Quick test_netlist_levels;
          tc "stats" `Quick test_netlist_stats ] );
      ( "bench",
        [ tc "parse c17" `Quick test_bench_parse;
          tc "forward refs" `Quick test_bench_forward_refs;
          tc "roundtrip c17" `Quick test_bench_roundtrip;
          tc "roundtrip alu" `Quick test_bench_roundtrip_suite;
          tc "print stability" `Quick test_bench_print_stability;
          tc "errors" `Quick test_bench_errors;
          tc "deep chains elaborate iteratively" `Quick test_bench_deep_chain;
          tc "token length capped" `Quick test_bench_token_cap;
          tc "verilog deep chain and token cap" `Quick
            test_verilog_deep_and_token_cap ] );
      ( "generators",
        [ QCheck_alcotest.to_alcotest prop_adder_compact;
          QCheck_alcotest.to_alcotest prop_adder_nand;
          QCheck_alcotest.to_alcotest prop_kogge_stone;
          QCheck_alcotest.to_alcotest prop_kogge_stone_log_depth;
          QCheck_alcotest.to_alcotest prop_multiplier_compact;
          QCheck_alcotest.to_alcotest prop_multiplier_nand;
          QCheck_alcotest.to_alcotest prop_parity;
          QCheck_alcotest.to_alcotest prop_sec_corrects_single_errors;
          QCheck_alcotest.to_alcotest prop_priority_logic;
          QCheck_alcotest.to_alcotest prop_comparator;
          QCheck_alcotest.to_alcotest prop_mux_tree;
          QCheck_alcotest.to_alcotest prop_alu;
          QCheck_alcotest.to_alcotest prop_transform_preserves_function;
          QCheck_alcotest.to_alcotest prop_random_dag_valid ] );
      ( "sweep-dead",
        [ tc "drops exactly the linter's set" `Quick
            test_sweep_dead_drops_linter_set;
          tc "area and delay invariant on the suite" `Quick
            test_sweep_dead_invariant_on_suite ] );
      ( "compose",
        [ tc "merge" `Quick test_merge;
          tc "pad exact" `Quick test_pad_random_exact;
          tc "pad noop" `Quick test_pad_noop ] );
      ( "iscas85",
        [ tc "published counts" `Slow test_iscas85_counts;
          tc "deterministic" `Quick test_iscas85_deterministic;
          tc "unknown" `Quick test_iscas85_unknown ] ) ]
