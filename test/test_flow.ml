(* Tests for the min-cost-flow substrate: two independent solvers checked
   against each other, against complementary slackness, and against brute
   force on tiny instances. *)

module Mcf = Minflo_flow.Mcf
module Simplex = Minflo_flow.Network_simplex
module Ssp = Minflo_flow.Ssp
module Cost_scaling = Minflo_flow.Cost_scaling
module Dinic = Minflo_flow.Dinic
module BF = Minflo_flow.Bellman_ford
module Diff_lp = Minflo_flow.Diff_lp
module Rng = Minflo_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let arc src dst cap cost = { Mcf.src; dst; cap; cost }

let status_str = function
  | Mcf.Optimal -> "Optimal"
  | Mcf.Infeasible -> "Infeasible"
  | Mcf.Unbounded -> "Unbounded"
  | Mcf.Aborted -> "Aborted"

let solve_both p = (Simplex.solve p, Ssp.solve p)

let expect_optimal name (sol : Mcf.solution) expected_cost =
  check Alcotest.string (name ^ " status") "Optimal" (status_str sol.status);
  check int (name ^ " objective") expected_cost sol.objective

(* ---------- hand-checked instances ---------- *)

(* 0 -> 1 cheap (cost 1, cap 4) and expensive (cost 3, cap 10); ship 7 *)
let test_two_parallel_arcs () =
  let p =
    { Mcf.num_nodes = 2;
      arcs = [| arc 0 1 4 1; arc 0 1 10 3 |];
      supply = [| 7; -7 |] }
  in
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 ((4 * 1) + (3 * 3));
  expect_optimal "ssp" s2 13;
  check int "simplex cheap arc saturated" 4 s1.flow.(0);
  check int "ssp cheap arc saturated" 4 s2.flow.(0);
  (match Mcf.check_optimality p s1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("simplex slackness: " ^ Minflo_robust.Diag.to_string e));
  match Mcf.check_optimality p s2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("ssp slackness: " ^ Minflo_robust.Diag.to_string e)

(* classic 4-node transportation instance *)
let test_transportation () =
  (* sources 0 (supply 3), 1 (supply 2); sinks 2 (demand 4), 3 (demand 1) *)
  let p =
    { Mcf.num_nodes = 4;
      arcs =
        [| arc 0 2 5 2; arc 0 3 5 3; arc 1 2 5 1; arc 1 3 5 4 |];
      supply = [| 3; 2; -4; -1 |] }
  in
  (* optimum: 1->2 carries 2 (cost 2), 0->2 carries 2 (cost 4),
     0->3 carries 1 (cost 3); total 9 *)
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 9;
  expect_optimal "ssp" s2 9

let test_negative_costs () =
  (* a profitable detour: 0 -> 1 -> 2 with negative cost on 1 -> 2 *)
  let p =
    { Mcf.num_nodes = 3;
      arcs = [| arc 0 2 10 5; arc 0 1 10 2; arc 1 2 10 (-1) |];
      supply = [| 4; 0; -4 |] }
  in
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 4;
  expect_optimal "ssp" s2 4

let test_negative_cycle_capacitated () =
  (* negative cycle 1 -> 2 -> 1 with finite caps: still a finite optimum;
     the cycle saturates and reduces cost *)
  let p =
    { Mcf.num_nodes = 3;
      arcs = [| arc 0 1 5 1; arc 1 2 5 (-3); arc 2 1 5 1; arc 1 0 5 10 |];
      supply = [| 0; 0; 0 |] }
  in
  (* best: circulate 5 units on 1->2->1: cost 5*(-3+1) = -10 *)
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 (-10);
  expect_optimal "ssp" s2 (-10)

let test_unbounded () =
  let p =
    { Mcf.num_nodes = 2;
      arcs =
        [| arc 0 1 Mcf.infinite_capacity (-1);
           arc 1 0 Mcf.infinite_capacity 0 |];
      supply = [| 0; 0 |] }
  in
  let s1, s2 = solve_both p in
  check Alcotest.string "simplex" "Unbounded" (status_str s1.status);
  check Alcotest.string "ssp" "Unbounded" (status_str s2.status)

let test_infeasible_unbalanced () =
  let p = { Mcf.num_nodes = 2; arcs = [| arc 0 1 1 1 |]; supply = [| 2; -1 |] } in
  let s1, s2 = solve_both p in
  check Alcotest.string "simplex" "Infeasible" (status_str s1.status);
  check Alcotest.string "ssp" "Infeasible" (status_str s2.status)

let test_infeasible_capacity () =
  let p = { Mcf.num_nodes = 2; arcs = [| arc 0 1 1 1 |]; supply = [| 3; -3 |] } in
  let s1, s2 = solve_both p in
  check Alcotest.string "simplex" "Infeasible" (status_str s1.status);
  check Alcotest.string "ssp" "Infeasible" (status_str s2.status)

let test_disconnected_balanced () =
  (* two independent components, each internally balanced *)
  let p =
    { Mcf.num_nodes = 4;
      arcs = [| arc 0 1 5 2; arc 2 3 5 7 |];
      supply = [| 3; -3; 1; -1 |] }
  in
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 ((3 * 2) + 7);
  expect_optimal "ssp" s2 13

let test_zero_supply_optimal_zero () =
  let p =
    { Mcf.num_nodes = 3;
      arcs = [| arc 0 1 5 1; arc 1 2 5 1 |];
      supply = [| 0; 0; 0 |] }
  in
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 0;
  expect_optimal "ssp" s2 0

(* ---------- randomized cross-check ---------- *)

let random_problem seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 8 in
  let m = 1 + Rng.int rng (3 * n) in
  let arcs =
    Array.init m (fun _ ->
        let src = Rng.int rng n in
        let dst = Rng.int rng n in
        let cap = Rng.int rng 15 in
        let cost = Rng.int rng 21 - 6 in
        arc src dst cap cost)
  in
  let supply = Array.make n 0 in
  let pairs = 1 + Rng.int rng 3 in
  for _ = 1 to pairs do
    let s = Rng.int rng n and t = Rng.int rng n in
    let amount = 1 + Rng.int rng 5 in
    supply.(s) <- supply.(s) + amount;
    supply.(t) <- supply.(t) - amount
  done;
  { Mcf.num_nodes = n; arcs; supply }

let prop_solvers_agree =
  QCheck.Test.make ~name:"network simplex and SSP agree (status + objective)"
    ~count:300 QCheck.small_nat (fun seed ->
      let p = random_problem (seed * 7919) in
      let s1 = Simplex.solve p and s2 = Ssp.solve p in
      match (s1.status, s2.status) with
      | Optimal, Optimal ->
        s1.objective = s2.objective
        && Result.is_ok (Mcf.check_optimality p s1)
        && Result.is_ok (Mcf.check_optimality p s2)
      | a, b -> a = b)

let prop_three_solvers_agree =
  QCheck.Test.make
    ~name:"cost scaling agrees with network simplex (status + objective)"
    ~count:300 QCheck.small_nat (fun seed ->
      let p = random_problem ((seed * 2671) + 13) in
      let s1 = Simplex.solve p and s3 = Cost_scaling.solve p in
      match (s1.status, s3.status) with
      | Optimal, Optimal ->
        s1.objective = s3.objective
        && Result.is_ok (Mcf.check_optimality p s3)
      | a, b -> a = b)

(* fixed-seed differential sweep: 50 pinned instances on which all three
   independent solver families must agree simultaneously. Unlike the QCheck
   properties above (fresh instances every run), these seeds are frozen so
   a regression in any solver reproduces identically in CI; a failure
   prints the whole instance for replay. *)

let problem_to_string (p : Mcf.problem) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "num_nodes = %d\nsupply = [|%s|]\n" p.num_nodes
       (String.concat "; "
          (Array.to_list (Array.map string_of_int p.supply))));
  Array.iteri
    (fun i a ->
      Buffer.add_string b
        (Printf.sprintf "arc %d: %d -> %d cap %d cost %d\n" i a.Mcf.src
           a.Mcf.dst a.Mcf.cap a.Mcf.cost))
    p.arcs;
  Buffer.contents b

let test_differential_fixed_seeds () =
  for seed = 1 to 50 do
    let p = random_problem ((seed * 48271) + 7) in
    let s1 = Simplex.solve p
    and s2 = Ssp.solve p
    and s3 = Cost_scaling.solve p in
    if s1.status <> s2.status || s2.status <> s3.status then
      Alcotest.failf
        "seed %d: statuses simplex=%s ssp=%s cost-scaling=%s on instance:\n%s"
        seed (status_str s1.status) (status_str s2.status)
        (status_str s3.status) (problem_to_string p);
    match s1.status with
    | Mcf.Optimal ->
      if s1.objective <> s2.objective || s2.objective <> s3.objective then
        Alcotest.failf
          "seed %d: objectives simplex=%d ssp=%d cost-scaling=%d on instance:\n%s"
          seed s1.objective s2.objective s3.objective (problem_to_string p)
    | _ -> ()
  done

let prop_simplex_certificate =
  QCheck.Test.make
    ~name:"simplex optimal solutions satisfy complementary slackness"
    ~count:300 QCheck.small_nat (fun seed ->
      let p = random_problem ((seed * 104729) + 1) in
      let s = Simplex.solve p in
      match s.status with
      | Optimal -> Result.is_ok (Mcf.check_optimality p s)
      | _ -> true)

let test_check_feasible_flow_diagnostics () =
  let p =
    { Mcf.num_nodes = 2; arcs = [| arc 0 1 5 1 |]; supply = [| 3; -3 |] }
  in
  check bool "correct flow accepted" true
    (Result.is_ok (Mcf.check_feasible_flow p [| 3 |]));
  check bool "over capacity rejected" true
    (Result.is_error (Mcf.check_feasible_flow p [| 6 |]));
  check bool "negative rejected" true
    (Result.is_error (Mcf.check_feasible_flow p [| -1 |]));
  check bool "conservation violated" true
    (Result.is_error (Mcf.check_feasible_flow p [| 2 |]));
  check bool "wrong length" true
    (Result.is_error (Mcf.check_feasible_flow p [| 1; 1 |]))

let test_self_loop_arc () =
  (* a self loop can carry flow only if profitable and never affects
     conservation; with positive cost it stays empty *)
  let p =
    { Mcf.num_nodes = 2;
      arcs = [| arc 0 0 5 3; arc 0 1 5 1 |];
      supply = [| 2; -2 |] }
  in
  let s1, s2 = solve_both p in
  expect_optimal "simplex" s1 2;
  expect_optimal "ssp" s2 2;
  check int "self loop empty" 0 s1.flow.(0)

let test_decompose_zero_flow () =
  let p =
    { Mcf.num_nodes = 2; arcs = [| arc 0 1 5 1 |]; supply = [| 0; 0 |] }
  in
  let d = Mcf.decompose p [| 0 |] in
  check bool "empty decomposition" true (d.paths = [] && d.cycles = [])

(* ---------- decomposition ---------- *)

let prop_decompose_recomposes =
  QCheck.Test.make
    ~name:"flow decomposition superposes back to the original flow"
    ~count:200 QCheck.small_nat (fun seed ->
      let p = random_problem ((seed * 911) + 77) in
      let s = Simplex.solve p in
      match s.status with
      | Optimal ->
        let d = Mcf.decompose p s.flow in
        let rebuilt = Array.make (Array.length p.arcs) 0 in
        List.iter
          (fun (arcs, amount) ->
            List.iter (fun a -> rebuilt.(a) <- rebuilt.(a) + amount) arcs)
          (d.paths @ d.cycles);
        rebuilt = s.flow
      | _ -> true)

let prop_decompose_paths_connect =
  QCheck.Test.make ~name:"decomposed paths are connected arc sequences"
    ~count:200 QCheck.small_nat (fun seed ->
      let p = random_problem ((seed * 337) + 3) in
      let s = Simplex.solve p in
      match s.status with
      | Optimal ->
        let d = Mcf.decompose p s.flow in
        List.for_all
          (fun (arcs, amount) ->
            amount > 0
            &&
            let rec connected = function
              | a :: (b :: _ as rest) ->
                p.arcs.(a).dst = p.arcs.(b).src && connected rest
              | _ -> true
            in
            connected arcs)
          d.paths
        && List.for_all
             (fun (arcs, _) ->
               match arcs with
               | [] -> false
               | first :: _ ->
                 let last = List.nth arcs (List.length arcs - 1) in
                 p.arcs.(last).dst = p.arcs.(first).src)
             d.cycles
      | _ -> true)

(* ---------- Bellman-Ford ---------- *)

let test_bf_distances () =
  let g =
    { BF.num_nodes = 4;
      arc_src = [| 0; 0; 1; 2 |];
      arc_dst = [| 1; 2; 3; 3 |];
      arc_weight = [| 1; 4; 1; -2 |] }
  in
  match BF.run g ~sources:[ 0 ] with
  | Distances d ->
    check int "d1" 1 d.(1);
    check int "d2" 4 d.(2);
    check int "d3" 2 d.(3)
  | Negative_cycle _ -> Alcotest.fail "unexpected negative cycle"

let test_bf_unreachable () =
  let g =
    { BF.num_nodes = 3;
      arc_src = [| 0 |];
      arc_dst = [| 1 |];
      arc_weight = [| 5 |] }
  in
  match BF.run g ~sources:[ 0 ] with
  | Distances d -> check int "unreachable" BF.unreachable d.(2)
  | Negative_cycle _ -> Alcotest.fail "unexpected negative cycle"

let test_bf_negative_cycle () =
  let g =
    { BF.num_nodes = 3;
      arc_src = [| 0; 1; 2 |];
      arc_dst = [| 1; 2; 0 |];
      arc_weight = [| 1; -3; 1 |] }
  in
  match BF.run_all g with
  | Distances _ -> Alcotest.fail "missed negative cycle"
  | Negative_cycle arcs ->
    let w = List.fold_left (fun acc a -> acc + g.arc_weight.(a)) 0 arcs in
    check bool "cycle weight negative" true (w < 0)

(* ---------- Dinic ---------- *)

let test_dinic_simple () =
  let d = Dinic.create ~num_nodes:4 in
  ignore (Dinic.add_edge d ~src:0 ~dst:1 ~cap:3);
  ignore (Dinic.add_edge d ~src:0 ~dst:2 ~cap:2);
  ignore (Dinic.add_edge d ~src:1 ~dst:3 ~cap:2);
  ignore (Dinic.add_edge d ~src:2 ~dst:3 ~cap:3);
  ignore (Dinic.add_edge d ~src:1 ~dst:2 ~cap:5);
  check int "max flow" 5 (Dinic.max_flow d ~source:0 ~sink:3)

let test_dinic_bottleneck () =
  let d = Dinic.create ~num_nodes:3 in
  let e0 = Dinic.add_edge d ~src:0 ~dst:1 ~cap:10 in
  let e1 = Dinic.add_edge d ~src:1 ~dst:2 ~cap:4 in
  check int "max flow" 4 (Dinic.max_flow d ~source:0 ~sink:2);
  check int "flow e0" 4 (Dinic.flow_on d e0);
  check int "flow e1" 4 (Dinic.flow_on d e1)

let test_dinic_min_cut () =
  let d = Dinic.create ~num_nodes:3 in
  ignore (Dinic.add_edge d ~src:0 ~dst:1 ~cap:1);
  ignore (Dinic.add_edge d ~src:1 ~dst:2 ~cap:9);
  ignore (Dinic.max_flow d ~source:0 ~sink:2);
  let side = Dinic.min_cut_side d ~source:0 in
  check bool "source in cut" true (Minflo_util.Bitset.mem side 0);
  check bool "sink out of cut" false (Minflo_util.Bitset.mem side 2)

let prop_dinic_matches_mcf_feasibility =
  (* a transportation instance is feasible iff Dinic saturates all supply
     from a super-source: cross-check against the MCF solvers' status *)
  QCheck.Test.make ~name:"Dinic feasibility oracle agrees with MCF status"
    ~count:200 QCheck.small_nat (fun seed ->
      let p = random_problem ((seed * 31337) + 5) in
      let n = p.num_nodes in
      let d = Dinic.create ~num_nodes:(n + 2) in
      let source = n and sink = n + 1 in
      Array.iter
        (fun (a : Mcf.arc) -> ignore (Dinic.add_edge d ~src:a.src ~dst:a.dst ~cap:a.cap))
        p.arcs;
      let total = ref 0 in
      Array.iteri
        (fun v b ->
          if b > 0 then begin
            total := !total + b;
            ignore (Dinic.add_edge d ~src:source ~dst:v ~cap:b)
          end
          else if b < 0 then ignore (Dinic.add_edge d ~src:v ~dst:sink ~cap:(-b)))
        p.supply;
      let feasible = Dinic.max_flow d ~source ~sink = !total in
      let s = Simplex.solve p in
      feasible = (s.status = Optimal))

(* ---------- Diff_lp ---------- *)

let test_diff_lp_basic () =
  let lp = Diff_lp.create () in
  let x = Diff_lp.var lp and y = Diff_lp.var lp in
  (* maximize x - y subject to x - y <= 3, y - x <= 1 *)
  Diff_lp.add_le lp x y 3;
  Diff_lp.add_le lp y x 1;
  Diff_lp.add_objective lp x 1;
  Diff_lp.add_objective lp y (-1);
  match Diff_lp.solve lp with
  | Solution { values; objective } ->
    check int "objective" 3 objective;
    check int "difference" 3 (values.(x) - values.(y))
  | Infeasible_lp -> Alcotest.fail "infeasible"
  | Unbounded_lp -> Alcotest.fail "unbounded"
  | Aborted_lp -> Alcotest.fail "aborted"

let test_diff_lp_chain () =
  (* chain x0 <= x1 <= x2 (i.e. x_i - x_{i+1} <= 0) with x2 - x0 <= 5;
     maximize (x2 - x0) *)
  let lp = Diff_lp.create () in
  let v = Array.init 3 (fun _ -> Diff_lp.var lp) in
  Diff_lp.add_le lp v.(0) v.(1) 0;
  Diff_lp.add_le lp v.(1) v.(2) 0;
  Diff_lp.add_le lp v.(2) v.(0) 5;
  Diff_lp.add_objective lp v.(2) 1;
  Diff_lp.add_objective lp v.(0) (-1);
  match Diff_lp.solve lp with
  | Solution { objective; values } ->
    check int "objective" 5 objective;
    check int "spread" 5 (values.(2) - values.(0))
  | _ -> Alcotest.fail "expected solution"

let test_diff_lp_infeasible () =
  (* x - y <= -1 and y - x <= -1: negative cycle *)
  let lp = Diff_lp.create () in
  let x = Diff_lp.var lp and y = Diff_lp.var lp in
  Diff_lp.add_le lp x y (-1);
  Diff_lp.add_le lp y x (-1);
  Diff_lp.add_objective lp x 1;
  Diff_lp.add_objective lp y (-1);
  match Diff_lp.solve lp with
  | Infeasible_lp -> ()
  | Solution _ -> Alcotest.fail "expected infeasible, got solution"
  | Unbounded_lp -> Alcotest.fail "expected infeasible, got unbounded"
  | Aborted_lp -> Alcotest.fail "expected infeasible, got aborted"

let test_diff_lp_unbounded () =
  (* maximize x - y with only x - y >= constraint missing: no upper bound *)
  let lp = Diff_lp.create () in
  let x = Diff_lp.var lp and y = Diff_lp.var lp in
  Diff_lp.add_le lp y x 0;
  Diff_lp.add_objective lp x 1;
  Diff_lp.add_objective lp y (-1);
  match Diff_lp.solve lp with
  | Unbounded_lp -> ()
  | Solution _ -> Alcotest.fail "expected unbounded, got solution"
  | Infeasible_lp -> Alcotest.fail "expected unbounded, got infeasible"
  | Aborted_lp -> Alcotest.fail "expected unbounded, got aborted"

(* brute force oracle for tiny LPs: enumerate assignments in [-bound, bound] *)
let brute_force_lp lp nvars bound =
  let best = ref None in
  let values = Array.make nvars 0 in
  let rec enumerate i =
    if i = nvars then begin
      match Diff_lp.check_assignment lp values with
      | Ok obj -> (
        match !best with
        | Some b when b >= obj -> ()
        | _ -> best := Some obj)
      | Error _ -> ()
    end
    else
      for v = -bound to bound do
        values.(i) <- v;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  !best

let prop_diff_lp_matches_brute_force =
  QCheck.Test.make ~name:"Diff_lp optimum matches brute force on tiny LPs"
    ~count:100 QCheck.small_nat (fun seed ->
      let rng = Rng.create ((seed * 6151) + 3) in
      let nvars = 2 + Rng.int rng 3 in
      let lp = Diff_lp.create () in
      let vars = Array.init nvars (fun _ -> Diff_lp.var lp) in
      (* feasible by construction: weights from a random potential plus
         non-negative slack, all small so the optimum is within the box *)
      let phi = Array.init nvars (fun _ -> Rng.int rng 5) in
      let ncons = 2 + Rng.int rng 6 in
      for _ = 1 to ncons do
        let x = Rng.int rng nvars and y = Rng.int rng nvars in
        if x <> y then
          Diff_lp.add_le lp vars.(x) vars.(y) (phi.(x) - phi.(y) + Rng.int rng 3)
      done;
      (* balanced objective pairs *)
      let x = Rng.int rng nvars and y = Rng.int rng nvars in
      let c = 1 + Rng.int rng 3 in
      Diff_lp.add_objective lp vars.(x) c;
      Diff_lp.add_objective lp vars.(y) (-c);
      match (Diff_lp.solve lp, brute_force_lp lp nvars 8) with
      | Solution { objective; values }, Some best ->
        (* brute force searches a box; the LP optimum can only exceed it if
           unconstrained spread allows, in which case skip *)
        Result.is_ok (Diff_lp.check_assignment lp values) && objective >= best
      | Unbounded_lp, _ -> true (* objective direction unconstrained *)
      | Solution _, None -> false (* solver found a solution, brute force none *)
      | Infeasible_lp, _ -> false (* our construction is always feasible *)
      | Aborted_lp, _ -> false (* no budget is installed here *))

let prop_diff_lp_solvers_agree =
  QCheck.Test.make ~name:"Diff_lp via simplex and via SSP agree" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create ((seed * 523) + 11) in
      let nvars = 2 + Rng.int rng 5 in
      let lp = Diff_lp.create () in
      let vars = Array.init nvars (fun _ -> Diff_lp.var lp) in
      let phi = Array.init nvars (fun _ -> Rng.int rng 7) in
      for _ = 1 to 2 + Rng.int rng 8 do
        let x = Rng.int rng nvars and y = Rng.int rng nvars in
        if x <> y then
          Diff_lp.add_le lp vars.(x) vars.(y) (phi.(x) - phi.(y) + Rng.int rng 4)
      done;
      for _ = 1 to 1 + Rng.int rng 2 do
        let x = Rng.int rng nvars and y = Rng.int rng nvars in
        let c = 1 + Rng.int rng 3 in
        Diff_lp.add_objective lp vars.(x) c;
        Diff_lp.add_objective lp vars.(y) (-c)
      done;
      match (Diff_lp.solve ~solver:`Simplex lp, Diff_lp.solve ~solver:`Ssp lp) with
      | Solution a, Solution b -> a.objective = b.objective
      | Unbounded_lp, Unbounded_lp -> true
      | Infeasible_lp, Infeasible_lp -> true
      | _ -> false)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "flow"
    [ ( "mcf",
        [ tc "parallel arcs" `Quick test_two_parallel_arcs;
          tc "transportation" `Quick test_transportation;
          tc "negative costs" `Quick test_negative_costs;
          tc "negative cycle (finite)" `Quick test_negative_cycle_capacitated;
          tc "unbounded" `Quick test_unbounded;
          tc "infeasible unbalanced" `Quick test_infeasible_unbalanced;
          tc "infeasible capacity" `Quick test_infeasible_capacity;
          tc "disconnected" `Quick test_disconnected_balanced;
          tc "zero supply" `Quick test_zero_supply_optimal_zero;
          tc "feasibility diagnostics" `Quick test_check_feasible_flow_diagnostics;
          tc "self loop" `Quick test_self_loop_arc;
          QCheck_alcotest.to_alcotest prop_solvers_agree;
          QCheck_alcotest.to_alcotest prop_three_solvers_agree;
          tc "differential sweep, 50 fixed seeds" `Quick
            test_differential_fixed_seeds;
          QCheck_alcotest.to_alcotest prop_simplex_certificate ] );
      ( "decompose",
        [ tc "zero flow" `Quick test_decompose_zero_flow;
          QCheck_alcotest.to_alcotest prop_decompose_recomposes;
          QCheck_alcotest.to_alcotest prop_decompose_paths_connect ] );
      ( "bellman-ford",
        [ tc "distances" `Quick test_bf_distances;
          tc "unreachable" `Quick test_bf_unreachable;
          tc "negative cycle" `Quick test_bf_negative_cycle ] );
      ( "dinic",
        [ tc "simple" `Quick test_dinic_simple;
          tc "bottleneck" `Quick test_dinic_bottleneck;
          tc "min cut" `Quick test_dinic_min_cut;
          QCheck_alcotest.to_alcotest prop_dinic_matches_mcf_feasibility ] );
      ( "diff_lp",
        [ tc "basic" `Quick test_diff_lp_basic;
          tc "chain" `Quick test_diff_lp_chain;
          tc "infeasible" `Quick test_diff_lp_infeasible;
          tc "unbounded" `Quick test_diff_lp_unbounded;
          QCheck_alcotest.to_alcotest prop_diff_lp_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_diff_lp_solvers_agree ] ) ]
