(* Tests for the warm-start/perf layer of PR 5: basis reuse correctness on
   cost-perturbed networks, pivot-count monotonicity, the engine-level
   warm-vs-cold trajectory identity with its >=30% pivot reduction, parallel
   batch bit-equality (journal, checkpoints, summary) including a mid-run
   SIGKILL of a worker, and counter determinism. *)

module Rng = Minflo_util.Rng
module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Perf = Minflo_robust.Perf
module Mcf = Minflo_flow.Mcf
module Simplex = Minflo_flow.Network_simplex
module Ssp = Minflo_flow.Ssp
module Generators = Minflo_netlist.Generators
module Bench_format = Minflo_netlist.Bench_format
module Iscas85 = Minflo_netlist.Iscas85
module Tech = Minflo_tech.Tech
module Model_cache = Minflo_tech.Model_cache
module Delay_model = Minflo_tech.Delay_model
module Tilos = Minflo_sizing.Tilos
module Dphase = Minflo_sizing.Dphase
module Minflotransit = Minflo_sizing.Minflotransit
module Sweep = Minflo_sizing.Sweep
module Audit = Minflo_lint.Audit
module Job = Minflo_runner.Job
module Checkpoint = Minflo_runner.Checkpoint
module Journal = Minflo_runner.Journal
module Supervisor = Minflo_runner.Supervisor
module Batch = Minflo_runner.Batch
module Benchmarks = Minflo_runner.Benchmarks

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let bits = Int64.bits_of_float

let check_float_bits name a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %.17g (%016Lx) <> %.17g (%016Lx)" name a (bits a) b
      (bits b)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "minflo-perf-%s-%d" name (Unix.getpid ()))
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* the same pinned 50-instance family as test_flow's differential sweep *)
let arc src dst cap cost = { Mcf.src; dst; cap; cost }

let random_problem seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 8 in
  let m = 1 + Rng.int rng (3 * n) in
  let arcs =
    Array.init m (fun _ ->
        let src = Rng.int rng n in
        let dst = Rng.int rng n in
        let cap = Rng.int rng 15 in
        let cost = Rng.int rng 21 - 6 in
        arc src dst cap cost)
  in
  let supply = Array.make n 0 in
  let pairs = 1 + Rng.int rng 3 in
  for _ = 1 to pairs do
    let s = Rng.int rng n and t = Rng.int rng n in
    let amount = 1 + Rng.int rng 5 in
    supply.(s) <- supply.(s) + amount;
    supply.(t) <- supply.(t) - amount
  done;
  { Mcf.num_nodes = n; arcs; supply }

(* the shape of a D/W iteration: same network, moved costs *)
let perturb_costs k (p : Mcf.problem) =
  { p with
    Mcf.arcs =
      Array.mapi
        (fun i (a : Mcf.arc) ->
          { a with Mcf.cost = a.cost + (((i + k) mod 3) - 1) })
        p.Mcf.arcs }

let pivots_of f =
  let before = Perf.snapshot () in
  let v = f () in
  (v, Perf.(diff before (snapshot ())).Perf.pivots)

(* ---------- warm-start correctness on the 50-seed family ---------- *)

let test_warm_matches_cold_on_perturbed () =
  let cold_total = ref 0 and warm_total = ref 0 and optimal = ref 0 in
  for seed = 1 to 50 do
    let p = random_problem ((seed * 48271) + 7) in
    let st = Simplex.make_state () in
    (* first fill through the state is a cold start and must agree with the
       plain solver *)
    let s0 = Simplex.solve_warm st p in
    let c0 = Simplex.solve p in
    if s0.Mcf.status <> c0.Mcf.status then
      Alcotest.failf "seed %d: first-fill status diverges" seed;
    if s0.Mcf.status = Mcf.Optimal then
      check int
        (Printf.sprintf "seed %d first-fill objective" seed)
        c0.Mcf.objective s0.Mcf.objective;
    (* re-solve with perturbed costs: warm (through the retained basis) and
       cold must agree on status, objective and certificate validity *)
    let q = perturb_costs seed p in
    let cold, cold_pivots = pivots_of (fun () -> Simplex.solve q) in
    let warm, warm_pivots = pivots_of (fun () -> Simplex.solve_warm st q) in
    if cold.Mcf.status <> warm.Mcf.status then
      Alcotest.failf "seed %d: perturbed status diverges" seed;
    if cold.Mcf.status = Mcf.Optimal then begin
      incr optimal;
      check int
        (Printf.sprintf "seed %d perturbed objective" seed)
        cold.Mcf.objective warm.Mcf.objective;
      (match Mcf.check_optimality q warm with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "seed %d: warm certificate invalid: %s" seed
          (Diag.to_string e));
      cold_total := !cold_total + cold_pivots;
      warm_total := !warm_total + warm_pivots
    end;
    (* the SSP warm path must agree with its own cold solver too *)
    let sst = Ssp.make_state () in
    ignore (Ssp.solve_warm sst p);
    let sc = Ssp.solve q in
    let sw = Ssp.solve_warm sst q in
    if sc.Mcf.status <> sw.Mcf.status then
      Alcotest.failf "seed %d: ssp warm status diverges" seed;
    if sc.Mcf.status = Mcf.Optimal then begin
      check int
        (Printf.sprintf "seed %d ssp objective" seed)
        sc.Mcf.objective sw.Mcf.objective;
      match Mcf.check_optimality q sw with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "seed %d: ssp warm certificate invalid: %s" seed
          (Diag.to_string e)
    end
  done;
  check bool "family exercises the optimal path" true (!optimal >= 10);
  (* monotonicity in aggregate: re-solving from the previous optimal basis
     must never cost more pivots than climbing out of the artificial one *)
  if !warm_total > !cold_total then
    Alcotest.failf "warm pivots %d > cold pivots %d over the 50-seed family"
      !warm_total !cold_total;
  check bool "pivots were actually counted" true (!cold_total > 0)

let test_shape_change_falls_back_cold () =
  let st = Simplex.make_state () in
  (* seeds 102/103 both solve Optimal, so the state survives the first
     solve and the second exercises the compatibility check *)
  let p = random_problem 102 in
  ignore (Simplex.solve_warm st p);
  check bool "state retained" true (Simplex.is_warm st);
  (* a different network shape: the basis is incompatible and must be
     rebuilt, not misapplied *)
  let p2 = random_problem 103 in
  let cold = Simplex.solve p2 in
  let warm = Simplex.solve_warm st p2 in
  check bool "status" true (cold.Mcf.status = warm.Mcf.status);
  if cold.Mcf.status = Mcf.Optimal then
    check int "objective after shape change" cold.Mcf.objective
      warm.Mcf.objective;
  Simplex.drop st;
  check bool "dropped state is cold" false (Simplex.is_warm st)

(* ---------- the engine: warm trajectory identical, >=30% fewer pivots ----- *)

let engine_run ~circuit ~warm =
  let nl = Iscas85.circuit circuit in
  let model = Model_cache.model ~tech:Tech.default_130nm nl in
  let target = 0.6 *. Sweep.dmin model in
  let options =
    { Minflotransit.default_options with
      solver = `Simplex;
      warm_start = warm;
      canonical_duals = true }
  in
  let before = Perf.snapshot () in
  let r = Minflotransit.optimize ~options model ~target in
  (r, Perf.(diff before (snapshot ())))

let engine_warm_reduction ~circuit () =
  let rc, pc = engine_run ~circuit ~warm:false in
  let rw, pw = engine_run ~circuit ~warm:true in
  check bool "both met" true (rc.Minflotransit.met && rw.Minflotransit.met);
  check_float_bits "final area identical" rc.Minflotransit.area
    rw.Minflotransit.area;
  check int "iteration count identical" rc.Minflotransit.iterations
    rw.Minflotransit.iterations;
  Array.iteri
    (fun i x ->
      check_float_bits (Printf.sprintf "size %d identical" i) x
        rw.Minflotransit.sizes.(i))
    rc.Minflotransit.sizes;
  check bool "warm leg reused a basis" true (pw.Perf.warm_starts > 0);
  check bool "cold leg never reused one" true (pc.Perf.warm_starts = 0);
  let reduction =
    100.
    *. float_of_int (pc.Perf.pivots - pw.Perf.pivots)
    /. float_of_int pc.Perf.pivots
  in
  if reduction < 30. then
    Alcotest.failf "%s: warm start saves only %.1f%% of pivots (%d -> %d)"
      circuit reduction pc.Perf.pivots pw.Perf.pivots

let test_engine_reduction_c432 = engine_warm_reduction ~circuit:"c432"
let test_engine_reduction_c6288 = engine_warm_reduction ~circuit:"c6288"

let test_warm_certificates_audit_clean () =
  (* the real D-phase workload: the displacement LP at the TILOS seed,
     solved cold and through a primed basis after a cost perturbation —
     both certificates must pass the independent auditor *)
  let nl = Iscas85.circuit "c432" in
  let model = Model_cache.model ~tech:Tech.default_130nm nl in
  let target = 0.6 *. Sweep.dmin model in
  let tilos = Tilos.size model ~target in
  check bool "tilos met" true tilos.Tilos.met;
  let delays = Delay_model.delays model tilos.Tilos.sizes in
  match
    Dphase.displacement_problem model ~sizes:tilos.Tilos.sizes ~delays
      ~deadline:target
  with
  | Error e -> Alcotest.failf "displacement LP: %s" (Diag.to_string e)
  | Ok problem ->
    let st = Simplex.make_state () in
    let first = Simplex.solve_warm st problem in
    check bool "first solve optimal" true (first.Mcf.status = Mcf.Optimal);
    (match Audit.check problem first with
    | [] -> ()
    | fs ->
      Alcotest.failf "first certificate rejected: %d finding(s)"
        (List.length fs));
    let q = perturb_costs 1 problem in
    let cold = Simplex.solve q in
    let warm = Simplex.solve_warm st q in
    check bool "perturbed solves optimal" true
      (cold.Mcf.status = Mcf.Optimal && warm.Mcf.status = Mcf.Optimal);
    check int "perturbed objectives agree" cold.Mcf.objective warm.Mcf.objective;
    List.iter
      (fun (tag, sol) ->
        match Audit.check q sol with
        | [] -> ()
        | fs ->
          Alcotest.failf "%s certificate rejected: %d finding(s)" tag
            (List.length fs))
      [ ("cold", cold); ("warm", warm) ]

(* ---------- counter determinism ---------- *)

let test_counter_determinism () =
  let a = snd (engine_run ~circuit:"c432" ~warm:true) in
  let b = snd (engine_run ~circuit:"c432" ~warm:true) in
  if not (Perf.equal a b) then
    Alcotest.failf "counters differ between identical runs: %s vs %s"
      (Format.asprintf "%a" Perf.pp a)
      (Format.asprintf "%a" Perf.pp b);
  check bool "counters are non-trivial" true (a.Perf.pivots > 0)

let test_bench_check_catches_drift () =
  let dir = fresh_dir "bench-drift" in
  let experiments = Benchmarks.suite ~quick:true () in
  let baseline = Filename.concat dir "baseline.json" in
  let oc = open_out baseline in
  output_string oc (Benchmarks.render experiments);
  close_out oc;
  (* same run, wall clock aside, matches its own baseline exactly *)
  (match Benchmarks.check ~baseline experiments with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "self-comparison diverged: %s" (String.concat "; " ds));
  (* a subset run (the --quick grid against the full baseline) checks too *)
  (match
     Benchmarks.check ~baseline (List.filteri (fun i _ -> i < 2) experiments)
   with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "subset comparison diverged: %s" (String.concat "; " ds));
  (* a single drifted counter is caught *)
  let drifted =
    List.mapi
      (fun i (e : Benchmarks.experiment) ->
        if i = 0 then
          { e with
            Benchmarks.counters =
              { e.Benchmarks.counters with
                Perf.pivots = e.Benchmarks.counters.Perf.pivots + 1 } }
        else e)
      experiments
  in
  (match Benchmarks.check ~baseline drifted with
  | Ok () -> Alcotest.fail "drifted counter accepted"
  | Error ds -> check int "exactly the drifted experiment flagged" 1
                  (List.length ds));
  rm_rf dir

(* ---------- parallel batch: bit-equality vs -j 1 ---------- *)

let sup ?(parallel = 1) () =
  { Supervisor.default_config with
    parallel;
    retries = 2;
    backoff_base = 0.01;
    isolate = true }

let write_adder dir bits =
  let file = Filename.concat dir (Printf.sprintf "adder%d.bench" bits) in
  Bench_format.write_file file (Generators.ripple_carry_adder ~bits ());
  file

let run_batch ?(make_fault = fun _ -> None) ?engine ~dir ~parallel jobs =
  let config =
    { Batch.default_config with
      checkpoint_dir = Some dir;
      supervise = sup ~parallel ();
      make_fault;
      engine =
        Option.value engine ~default:Batch.default_config.Batch.engine }
  in
  match Batch.run ~config jobs with
  | Ok s -> s
  | Error e -> Alcotest.failf "batch (-j %d): %s" parallel (Diag.to_string e)

(* everything deterministic about a summary, in submission order *)
let summary_sig (s : Batch.summary) =
  ( s.Batch.ok, s.Batch.failed, s.Batch.skipped, s.Batch.mismatches,
    List.map
      (fun (r : Batch.job_report) ->
        ( Job.id r.Batch.job,
          r.Batch.attempts,
          r.Batch.quarantined,
          match r.Batch.outcome with
          | Some (Ok o) ->
            Printf.sprintf "ok %016Lx %016Lx %d %b" (bits o.Job.area)
              (bits o.Job.area_ratio) o.Job.iterations o.Job.met
          | Some (Error e) -> "error " ^ Diag.error_code e
          | None -> "skipped" ))
      s.Batch.reports )

let check_canonical_journals_equal d1 d4 =
  let j1 = Journal.canonical (Filename.concat d1 "journal.jsonl") in
  let j4 = Journal.canonical (Filename.concat d4 "journal.jsonl") in
  check int "canonical journal line count" (List.length j1) (List.length j4);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "canonical journal line %d diverges:\n-j1: %s\n-j4: %s"
          i a b)
    (List.combine j1 j4);
  j1

let test_parallel_batch_bit_identical () =
  let src = fresh_dir "grid-src" in
  let adder = write_adder src 4 in
  let jobs =
    Job.cross ~circuits:[ "c17"; adder ]
      ~factors:[ 0.6; 0.7; 0.8; 0.9 ]
      ~solvers:[ `Simplex; `Ssp ]
  in
  check int "16-job grid" 16 (List.length jobs);
  let d1 = fresh_dir "grid-j1" and d4 = fresh_dir "grid-j4" in
  let s1 = run_batch ~dir:d1 ~parallel:1 jobs in
  let s4 = run_batch ~dir:d4 ~parallel:4 jobs in
  check bool "summaries bit-identical" true (summary_sig s1 = summary_sig s4);
  check int "all jobs succeeded" 16 s1.Batch.ok;
  let j1 = check_canonical_journals_equal d1 d4 in
  (* the parent-side journal carries the worker-side events: per-pass
     checkpoint progress and the final perf counters of every job *)
  check bool "journal has job-perf events" true
    (List.exists (fun l -> contains l "job-perf") j1);
  check bool "journal has job-checkpoint events" true
    (List.exists (fun l -> contains l "job-checkpoint") j1);
  check bool "journal has pivot counters" true
    (List.exists (fun l -> contains l "\"pivots\":") j1);
  List.iter rm_rf [ src; d1; d4 ]

let test_parallel_sigkill_bit_identical () =
  let src = fresh_dir "kill-src" in
  let adder = write_adder src 4 in
  let jobs =
    Job.cross ~circuits:[ "c17"; adder ]
      ~factors:[ 0.6; 0.7; 0.8; 0.9 ]
      ~solvers:[ `Simplex; `Ssp ]
  in
  let victim = Job.id (List.nth jobs 5) in
  (* the victim's first attempt SIGKILLs its own worker process mid-run;
     the marker file makes the retry run clean. Runs inside the child, so
     the parent (and the other in-flight workers under -j 4) must absorb
     the loss: retry the victim, keep the journal consistent. *)
  let kill_once dir (job : Job.t) =
    if Job.id job = victim then begin
      let marker = Filename.concat dir "killed-once" in
      if not (Sys.file_exists marker) then begin
        close_out (open_out marker);
        Unix.kill (Unix.getpid ()) Sys.sigkill
      end
    end;
    None
  in
  let d1 = fresh_dir "kill-j1" and d4 = fresh_dir "kill-j4" in
  let s1 = run_batch ~make_fault:(kill_once d1) ~dir:d1 ~parallel:1 jobs in
  let s4 = run_batch ~make_fault:(kill_once d4) ~dir:d4 ~parallel:4 jobs in
  check bool "summaries bit-identical" true (summary_sig s1 = summary_sig s4);
  check int "all jobs still succeed" 16 s1.Batch.ok;
  let victim_report =
    List.find
      (fun (r : Batch.job_report) -> Job.id r.Batch.job = victim)
      s4.Batch.reports
  in
  check int "victim needed a retry" 2 victim_report.Batch.attempts;
  let j1 = check_canonical_journals_equal d1 d4 in
  check bool "crash was journaled" true
    (List.exists (fun l -> contains l "job-crashed") j1);
  List.iter rm_rf [ src; d1; d4 ]

let test_parallel_checkpoints_bit_identical () =
  (* interrupt every job with a 2-pass budget: each leaves a checkpoint,
     and the -j 4 checkpoints must carry exactly the -j 1 state (the wall
     budget meter aside — it is the only wall-clock field) *)
  let src = fresh_dir "ckpt-src" in
  let adder = write_adder src 8 in
  let jobs =
    Job.cross ~circuits:[ "c17"; adder ] ~factors:[ 0.6; 0.7 ]
      ~solvers:[ `Simplex ]
  in
  let engine =
    { Minflotransit.default_options with
      limits = Budget.limits ~max_iterations:2 () }
  in
  let d1 = fresh_dir "ckpt-j1" and d4 = fresh_dir "ckpt-j4" in
  let s1 = run_batch ~engine ~dir:d1 ~parallel:1 jobs in
  let s4 = run_batch ~engine ~dir:d4 ~parallel:4 jobs in
  check bool "summaries bit-identical" true (summary_sig s1 = summary_sig s4);
  let compared = ref 0 in
  List.iter
    (fun j ->
      let f = Job.file_slug j ^ ".ckpt" in
      let p1 = Filename.concat d1 f and p4 = Filename.concat d4 f in
      check bool
        (Printf.sprintf "checkpoint presence parity (%s)" (Job.id j))
        (Sys.file_exists p1) (Sys.file_exists p4);
      if Sys.file_exists p1 then begin
        incr compared;
        match (Checkpoint.load p1, Checkpoint.load p4) with
        | Ok a, Ok b ->
          let id = Job.id j in
          check string (id ^ " circuit") a.Checkpoint.circuit
            b.Checkpoint.circuit;
          check bool (id ^ " hash") true
            (a.Checkpoint.circuit_hash = b.Checkpoint.circuit_hash);
          check_float_bits (id ^ " target") a.Checkpoint.target
            b.Checkpoint.target;
          check string (id ^ " solver") a.Checkpoint.solver b.Checkpoint.solver;
          let sa = a.Checkpoint.snapshot and sb = b.Checkpoint.snapshot in
          check int (id ^ " iter") sa.Minflotransit.snap_iter
            sb.Minflotransit.snap_iter;
          check_float_bits (id ^ " area") sa.Minflotransit.snap_area
            sb.Minflotransit.snap_area;
          check_float_bits (id ^ " eta") sa.Minflotransit.snap_eta
            sb.Minflotransit.snap_eta;
          Array.iteri
            (fun i x ->
              check_float_bits
                (Printf.sprintf "%s size %d" id i)
                x
                sb.Minflotransit.snap_sizes.(i))
            sa.Minflotransit.snap_sizes;
          check int (id ^ " budget iterations") a.Checkpoint.budget_iterations
            b.Checkpoint.budget_iterations;
          check int (id ^ " budget pivots") a.Checkpoint.budget_pivots
            b.Checkpoint.budget_pivots
        | Error e, _ | _, Error e ->
          Alcotest.failf "%s: checkpoint load: %s" (Job.id j) (Diag.to_string e)
      end)
    jobs;
  check bool "at least one interrupted checkpoint compared" true (!compared > 0);
  List.iter rm_rf [ src; d1; d4 ]

let () =
  Alcotest.run "perf"
    [ ( "warm-flow",
        [ Alcotest.test_case "warm = cold on 50 perturbed networks" `Quick
            test_warm_matches_cold_on_perturbed;
          Alcotest.test_case "shape change falls back cold" `Quick
            test_shape_change_falls_back_cold ] );
      ( "warm-engine",
        [ Alcotest.test_case "c432: identical trajectory, >=30% fewer pivots"
            `Quick test_engine_reduction_c432;
          Alcotest.test_case "c6288: identical trajectory, >=30% fewer pivots"
            `Slow test_engine_reduction_c6288;
          Alcotest.test_case "warm certificates audit-clean" `Quick
            test_warm_certificates_audit_clean ] );
      ( "counters",
        [ Alcotest.test_case "identical runs, identical counters" `Quick
            test_counter_determinism;
          Alcotest.test_case "bench --check catches a drifted counter" `Quick
            test_bench_check_catches_drift ] );
      ( "parallel",
        [ Alcotest.test_case "-j 4 batch bit-identical to -j 1" `Quick
            test_parallel_batch_bit_identical;
          Alcotest.test_case "mid-run SIGKILL of a worker" `Quick
            test_parallel_sigkill_bit_identical;
          Alcotest.test_case "checkpoints bit-identical" `Quick
            test_parallel_checkpoints_bit_identical ] ) ]
