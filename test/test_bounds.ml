(* Tests for the pre-solve interval bound analysis (MF201-MF204): box
   soundness of the per-vertex and circuit-delay intervals against
   brute-force delay evaluation, validity of the MF201 witness path,
   agreement between the static infeasibility verdict and the engine, the
   pinned/irrelevant gate sets, and the MF204 technology probe. *)

module Gen = Minflo_netlist.Generators
module Tech = Minflo_tech.Tech
module Elmore = Minflo_tech.Elmore
module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta
module Sweep = Minflo_sizing.Sweep
module Minflotransit = Minflo_sizing.Minflotransit
module Bounds = Minflo_lint.Bounds
module Finding = Minflo_lint.Finding
module Rule = Minflo_lint.Rule
module Digraph = Minflo_graph.Digraph
module Rng = Minflo_util.Rng
module Gen_mut = Minflo_fuzz.Gen_mut
module Diag = Minflo_robust.Diag

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let model_of nl = Elmore.of_netlist Tech.default_130nm nl

let count id findings =
  List.length
    (List.filter (fun (f : Finding.t) -> f.rule.Rule.id = id) findings)

let random_sizes rng (m : Delay_model.t) =
  Array.init (Delay_model.num_vertices m) (fun _ ->
      m.Delay_model.min_size
      +. Rng.float rng (m.Delay_model.max_size -. m.Delay_model.min_size))

(* every feasible sizing must land inside the per-vertex and circuit
   intervals; [name] tags the sizing under test in failure messages *)
let assert_contained name (m : Delay_model.t) (b : Bounds.t) sizes =
  let slack lo = lo -. (1e-9 *. Float.max 1.0 (abs_float lo)) in
  let bulge hi = hi +. (1e-9 *. Float.max 1.0 (abs_float hi)) in
  let delays = Delay_model.delays m sizes in
  Array.iteri
    (fun i d ->
      if d < slack b.Bounds.d_lo.(i) || d > bulge b.Bounds.d_hi.(i) then
        Alcotest.failf "%s: vertex %d delay %.17g outside [%.17g, %.17g]"
          name i d b.Bounds.d_lo.(i) b.Bounds.d_hi.(i))
    delays;
  let cp = Sta.critical_path_only m ~delays in
  if cp < slack b.Bounds.cp_lo || cp > bulge b.Bounds.cp_hi then
    Alcotest.failf "%s: cp %.17g outside [%.17g, %.17g]" name cp b.Bounds.cp_lo
      b.Bounds.cp_hi

let soundness_circuits () =
  [ ("c17", Gen.c17 ());
    ("ripple8", Gen.ripple_carry_adder ~bits:8 ());
    ("kogge8", Gen.kogge_stone_adder ~bits:8 ());
    ("random-dag", Gen.random_dag ~gates:60 ~inputs:8 ~outputs:4 ~seed:7 ()) ]

let test_box_soundness () =
  List.iter
    (fun (name, nl) ->
      let m = model_of nl in
      let b = Bounds.compute m in
      check bool (name ^ " interval sane") true (b.Bounds.cp_lo <= b.Bounds.cp_hi);
      assert_contained (name ^ "/all-min") m b
        (Delay_model.uniform_sizes m m.Delay_model.min_size);
      assert_contained (name ^ "/all-max") m b
        (Delay_model.uniform_sizes m m.Delay_model.max_size);
      let rng = Rng.create 42 in
      for k = 1 to 20 do
        assert_contained
          (Printf.sprintf "%s/random-%d" name k)
          m b (random_sizes rng m)
      done)
    (soundness_circuits ())

(* the floor is not just a bound — the witness must be a real source-rooted
   path of the timing graph whose best-case delays sum to exactly cp_lo *)
let test_witness_path () =
  List.iter
    (fun (name, nl) ->
      let m = model_of nl in
      let b = Bounds.compute m in
      let path = Bounds.witness_path m b in
      check bool (name ^ " non-empty") true (path <> []);
      let g = m.Delay_model.graph in
      check int (name ^ " starts at a source") 0
        (Digraph.in_degree g (List.hd path));
      let rec edges_ok = function
        | i :: (j :: _ as rest) ->
          List.mem j (Digraph.succ g i) && edges_ok rest
        | _ -> true
      in
      check bool (name ^ " consecutive edges exist") true (edges_ok path);
      let sum =
        List.fold_left (fun acc i -> acc +. b.Bounds.d_lo.(i)) 0.0 path
      in
      check bool (name ^ " achieves the floor") true
        (abs_float (sum -. b.Bounds.cp_lo)
        <= 1e-9 *. Float.max 1.0 b.Bounds.cp_lo))
    (soundness_circuits ())

let test_mf201_fires_and_engine_agrees () =
  let m = model_of (Gen.c17 ()) in
  let dmin = Sweep.dmin m in
  let target = 0.05 *. dmin in
  let b = Bounds.compute m in
  check bool "statically infeasible" true (Bounds.infeasible b ~target);
  let fs = Bounds.check m ~target in
  check int "MF201 once" 1 (count "MF201" fs);
  check int "MF202 suppressed" 0 (count "MF202" fs);
  check int "MF203 suppressed" 0 (count "MF203" fs);
  (match Bounds.infeasible_target_error m b ~target with
  | Some (Diag.Infeasible_target { target = t; lower_bound; witness }) ->
    check bool "error carries target" true (t = target);
    check bool "bound above target" true (lower_bound > target);
    check bool "witness labels present" true (witness <> [])
  | Some e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | None -> Alcotest.fail "no typed error");
  (* the engine must agree: no solver can meet a target below the floor *)
  let r = Minflotransit.optimize m ~target in
  check bool "engine cannot meet it" false r.Minflotransit.met

let test_feasible_target_is_clean () =
  let m = model_of (Gen.c17 ()) in
  let dmin = Sweep.dmin m in
  let b = Bounds.compute m in
  check bool "dmin not infeasible" false (Bounds.infeasible b ~target:dmin);
  check int "no MF201 at 2*dmin" 0 (count "MF201" (Bounds.check m ~target:(2.0 *. dmin)))

let test_pinned_and_irrelevant () =
  let m = model_of (Gen.ripple_carry_adder ~bits:8 ()) in
  let n = Delay_model.num_vertices m in
  let b = Bounds.compute m in
  (* at target = cp_lo every witness vertex has zero freedom *)
  let pinned = Bounds.pinned m b ~target:b.Bounds.cp_lo in
  check bool "witness is pinned at the floor" true
    (List.for_all
       (fun i -> List.mem i pinned)
       (Bounds.witness_path m b));
  (* a target nobody can miss makes every gate slack-irrelevant *)
  let loose = Bounds.irrelevant m b ~target:(2.0 *. b.Bounds.cp_hi) in
  check int "all gates irrelevant under a loose target" n (List.length loose);
  (* determinism: same model, same verdicts *)
  let b' = Bounds.compute m in
  check bool "pinned deterministic" true
    (Bounds.pinned m b' ~target:b.Bounds.cp_lo = pinned);
  check bool "irrelevant deterministic" true
    (Bounds.irrelevant m b' ~target:(2.0 *. b.Bounds.cp_hi) = loose);
  (* the finding-producing entry point reports them under MF202/MF203 *)
  let fs = Bounds.check m ~target:(2.0 *. b.Bounds.cp_hi) in
  check bool "MF203 findings" true (count "MF203" fs > 0);
  check int "no MF201" 0 (count "MF201" fs)

let test_mf204_tech_probe () =
  check int "stock technology is monotone" 0
    (count "MF204" (Bounds.check_tech Tech.default_130nm));
  let broken =
    { Tech.default_130nm with Tech.c_gate = -.Tech.default_130nm.Tech.c_gate }
  in
  check bool "negative gate capacitance caught" true
    (count "MF204" (Bounds.check_tech broken) > 0)

(* 50-seed differential: on fuzz cases, the static verdict and the full
   engine must agree — whenever MF201 says the target is unmeetable, the
   engine must come back unmet (the converse is not implied: the bounds
   are necessary conditions only) *)
let test_fuzz_differential () =
  let fired = ref 0 in
  for seed = 0 to 49 do
    match
      try
        let nl = Gen_mut.case ~seed () in
        let m = model_of nl in
        Delay_model.validate m;
        Some m
      with _ -> None
    with
    | None -> ()
    | Some m ->
      let dmin = Sweep.dmin m in
      let factor = [| 0.02; 0.3; 0.9 |].(seed mod 3) in
      let target = factor *. dmin in
      let b = Bounds.compute m in
      if Bounds.infeasible b ~target then begin
        incr fired;
        let r = Minflotransit.optimize m ~target in
        if r.Minflotransit.met then
          Alcotest.failf
            "seed %d: engine met target %.17g below static floor %.17g" seed
            target b.Bounds.cp_lo
      end
  done;
  check bool "differential exercised the infeasible verdict" true (!fired > 0)

let () =
  Alcotest.run "bounds"
    [ ( "soundness",
        [ Alcotest.test_case "box containment vs brute force" `Quick
            test_box_soundness;
          Alcotest.test_case "witness path validity" `Quick test_witness_path ] );
      ( "verdicts",
        [ Alcotest.test_case "MF201 fires and the engine agrees" `Quick
            test_mf201_fires_and_engine_agrees;
          Alcotest.test_case "feasible targets stay clean" `Quick
            test_feasible_target_is_clean;
          Alcotest.test_case "pinned and irrelevant gates" `Quick
            test_pinned_and_irrelevant;
          Alcotest.test_case "MF204 technology probe" `Quick
            test_mf204_tech_probe ] );
      ( "differential",
        [ Alcotest.test_case "50-seed engine agreement" `Slow
            test_fuzz_differential ] ) ]
