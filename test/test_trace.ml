(* Tests for proof-carrying engine traces (MF210-MF215): an untampered
   c432 trace audits clean, and every class of single-field tamper — a
   claimed area, one flow value, one arc cost, the schema version, a
   truncated file — surfaces as the right typed finding. *)

module Iscas85 = Minflo_netlist.Iscas85
module Tech = Minflo_tech.Tech
module Elmore = Minflo_tech.Elmore
module Sweep = Minflo_sizing.Sweep
module Minflotransit = Minflo_sizing.Minflotransit
module Trace = Minflo_lint.Trace
module Finding = Minflo_lint.Finding
module Rule = Minflo_lint.Rule
module Report = Minflo_lint.Report
module Json = Minflo_util.Json

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let count id findings =
  List.length
    (List.filter (fun (f : Finding.t) -> f.rule.Rule.id = id) findings)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* one real engine run, traced once and shared by every test *)
let fixture =
  lazy
    (let nl = Iscas85.circuit "c432" in
     let model = Elmore.of_netlist Tech.default_130nm nl in
     let target = 0.5 *. Sweep.dmin model in
     let steps = ref [] in
     let result =
       Minflotransit.optimize model ~target ~on_step:(fun s ->
           steps := s :: !steps)
     in
     let path = Filename.temp_file "minflo-trace" ".jsonl" in
     let sink =
       match Minflo_robust.Io.create_sink path with
       | Ok s -> s
       | Error e -> Alcotest.failf "create_sink: %s" (Minflo_robust.Diag.to_string e)
     in
     let w = Trace.create sink model ~circuit:"c432" ~target in
     Trace.record_tilos w result.Minflotransit.tilos;
     List.iter (Trace.record_step w) (List.rev !steps);
     Trace.record_result w result;
     (match Trace.error w with
     | None -> ()
     | Some e -> Alcotest.failf "trace write: %s" (Minflo_robust.Diag.to_string e));
     Minflo_robust.Io.sink_close sink;
     let content = read_file path in
     Sys.remove path;
     (model, target, content))

(* ---------- tamper machinery over the NDJSON lines ---------- *)

let lines content =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' content)

let unlines ls = String.concat "\n" ls ^ "\n"

let parse_line l =
  match Json.parse l with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable trace line: %s" e

let kind j = Option.value ~default:"" (Json.str_field "record" j)

let set_field k v = function
  | Json.Obj fields ->
    Json.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields)
  | j -> j

let num_field k j =
  match Json.num_field k j with
  | Some v -> v
  | None -> Alcotest.failf "field %s missing" k

(* rewrite the first line matching [sel] with [f]; fail if none matched *)
let tamper_first sel f content =
  let hit = ref false in
  let ls =
    List.map
      (fun l ->
        let j = parse_line l in
        if (not !hit) && sel j then begin
          hit := true;
          Json.to_string (f j)
        end
        else l)
      (lines content)
  in
  if not !hit then Alcotest.fail "no trace line matched the tamper selector";
  unlines ls

let has_lp j = Json.member "lp" j <> None
let is_step j = kind j = "step"

(* ---------- the tests ---------- *)

let test_untampered_is_clean () =
  let model, target, content = Lazy.force fixture in
  check bool "trace has steps" true
    (List.exists (fun l -> is_step (parse_line l)) (lines content));
  check bool "some step carries a flow certificate" true
    (List.exists
       (fun l ->
         let j = parse_line l in
         is_step j && has_lp j)
       (lines content));
  match Trace.audit model ~target content with
  | [] -> ()
  | fs -> Alcotest.failf "clean trace rejected:\n%s" (Report.render fs)

let audit_tampered tampered =
  let model, target, _ = Lazy.force fixture in
  let fs = Trace.audit model ~target tampered in
  check bool "tamper detected" true (fs <> []);
  check bool "at error severity" true (Finding.worst fs = Some Rule.Error);
  check int "exit code 2" 2 (Report.exit_code fs);
  fs

let test_tamper_claimed_area () =
  let _, _, content = Lazy.force fixture in
  let tampered =
    tamper_first is_step
      (fun j -> set_field "area" (Json.Num (num_field "area" j *. 1.01)) j)
      content
  in
  check bool "MF211 fired" true (count "MF211" (audit_tampered tampered) > 0)

let test_tamper_flow_value () =
  let _, _, content = Lazy.force fixture in
  let tampered =
    tamper_first
      (fun j -> is_step j && has_lp j)
      (fun j ->
        let lp =
          match Json.member "lp" j with
          | Some lp -> lp
          | None -> assert false
        in
        let flow =
          match Json.member "flow" lp with
          | Some (Json.List vs) -> vs
          | _ -> Alcotest.fail "lp has no flow array"
        in
        let bumped =
          List.mapi
            (fun i v ->
              if i = 0 then
                match v with
                | Json.Num f -> Json.Num (f +. 1.0)
                | _ -> Alcotest.fail "non-numeric flow"
              else v)
            flow
        in
        set_field "lp" (set_field "flow" (Json.List bumped) lp) j)
      content
  in
  (* a skewed flow breaks conservation at the arc's endpoints *)
  check bool "MF102 fired" true (count "MF102" (audit_tampered tampered) > 0)

let test_tamper_arc_cost () =
  let _, _, content = Lazy.force fixture in
  let tampered =
    tamper_first
      (fun j -> is_step j && has_lp j)
      (fun j ->
        let lp =
          match Json.member "lp" j with
          | Some lp -> lp
          | None -> assert false
        in
        let arcs =
          match Json.member "arcs" lp with
          | Some (Json.List arcs) -> arcs
          | _ -> Alcotest.fail "lp has no arcs array"
        in
        let bumped =
          List.mapi
            (fun i arc ->
              if i = 0 then
                match arc with
                | Json.List [ s; d; c; Json.Num cost ] ->
                  Json.List [ s; d; c; Json.Num (cost +. 1.0) ]
                | _ -> Alcotest.fail "malformed arc"
              else arc)
            arcs
        in
        set_field "lp" (set_field "arcs" (Json.List bumped) lp) j)
      content
  in
  (* the rebuilt displacement LP no longer matches the recorded one *)
  check bool "MF215 fired" true (count "MF215" (audit_tampered tampered) > 0)

let test_tamper_schema_version () =
  let _, _, content = Lazy.force fixture in
  let tampered =
    tamper_first
      (fun j -> kind j = "header")
      (set_field "version" (Json.Num 999.0))
      content
  in
  check bool "MF210 fired" true (count "MF210" (audit_tampered tampered) > 0)

let test_truncated_trace () =
  let _, _, content = Lazy.force fixture in
  let ls = lines content in
  let truncated = unlines (List.filteri (fun i _ -> i < List.length ls - 1) ls) in
  check bool "MF210 fired" true (count "MF210" (audit_tampered truncated) > 0)

let test_wrong_target_rejected () =
  let model, target, content = Lazy.force fixture in
  let fs = Trace.audit model ~target:(1.1 *. target) content in
  check bool "MF210 fired" true (count "MF210" fs > 0)

let test_garbage_rejected () =
  let model, target, _ = Lazy.force fixture in
  let fs = Trace.audit model ~target "this is not json\n" in
  check bool "MF210 fired" true (count "MF210" fs > 0)

let () =
  Alcotest.run "trace"
    [ ( "clean",
        [ Alcotest.test_case "untampered c432 trace audits clean" `Quick
            test_untampered_is_clean ] );
      ( "tamper",
        [ Alcotest.test_case "claimed area -> MF211" `Quick
            test_tamper_claimed_area;
          Alcotest.test_case "flow value -> MF102" `Quick test_tamper_flow_value;
          Alcotest.test_case "arc cost -> MF215" `Quick test_tamper_arc_cost;
          Alcotest.test_case "schema version -> MF210" `Quick
            test_tamper_schema_version;
          Alcotest.test_case "truncated file -> MF210" `Quick
            test_truncated_trace;
          Alcotest.test_case "foreign target -> MF210" `Quick
            test_wrong_target_rejected;
          Alcotest.test_case "garbage -> MF210" `Quick test_garbage_rejected ] ) ]
