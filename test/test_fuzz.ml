(* Tests for the differential fuzzing harness: fingerprint identity,
   fault-site enumeration, deterministic case generation, the
   delta-debugging shrinker's contract (keep-preservation, termination,
   budget), the reproducer corpus format, and end-to-end campaigns with
   deterministic replay. *)

module Diag = Minflo_robust.Diag
module Fault = Minflo_robust.Fault
module Netlist = Minflo_netlist.Netlist
module Bench_format = Minflo_netlist.Bench_format
module Generators = Minflo_netlist.Generators
module Fingerprint = Minflo_fuzz.Fingerprint
module Gen_mut = Minflo_fuzz.Gen_mut
module Oracle = Minflo_fuzz.Oracle
module Shrink = Minflo_fuzz.Shrink
module Corpus = Minflo_fuzz.Corpus
module Campaign = Minflo_fuzz.Campaign

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "minflo-fuzz-%s-%d" name (Unix.getpid ()))
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

let bench nl = Bench_format.to_string nl

(* a cheap oracle configuration: one solver, two D/W passes, no LP
   differential — fast enough to run hundreds of times in the shrink
   tests while still exercising the full TILOS + D/W path *)
let cheap_oracle ?fault_site () =
  { Oracle.default_config with
    dw_iterations = 2;
    budget_iterations = 400;
    budget_pivots = 200_000;
    solvers = [ `Simplex ];
    differential = false;
    fault_site;
    fault_seed = 3 }

let small_profile =
  { Gen_mut.max_gates = 12; max_inputs = 4; max_outputs = 3;
    mutation_rounds = 2 }

(* ---------- fingerprints ---------- *)

let test_fingerprint_roundtrip () =
  let cases =
    [ Fingerprint.make ~phase:"engine" ~code:"fault-injected"
        ~detail:"dphase.simplex" ();
      Fingerprint.make ~phase:"lint" ~code:"MF003" ();
      (* detail containing the separator must survive *)
      Fingerprint.make ~phase:"audit" ~code:"MF102" ~detail:"a/b/c" () ]
  in
  List.iter
    (fun fp ->
      match Fingerprint.of_string (Fingerprint.to_string fp) with
      | Some fp' ->
        check bool
          (Printf.sprintf "round trip %s" (Fingerprint.to_string fp))
          true
          (Fingerprint.equal fp fp')
      | None ->
        Alcotest.failf "unparsable own rendering %S"
          (Fingerprint.to_string fp))
    cases;
  check bool "phase alone is not a fingerprint" true
    (Fingerprint.of_string "engine" = None);
  check bool "empty string is not a fingerprint" true
    (Fingerprint.of_string "" = None)

let test_fingerprint_order () =
  let a = Fingerprint.make ~phase:"audit" ~code:"MF102" ~detail:"ssp" () in
  let b = Fingerprint.make ~phase:"audit" ~code:"MF102" ~detail:"ssp" () in
  let c = Fingerprint.make ~phase:"audit" ~code:"MF103" ~detail:"ssp" () in
  check bool "equal" true (Fingerprint.equal a b);
  check int "compare equal" 0 (Fingerprint.compare a b);
  check bool "code orders" true (Fingerprint.compare a c < 0);
  check bool "not equal" false (Fingerprint.equal a c)

let test_fingerprint_slug () =
  let fp =
    Fingerprint.make ~phase:"check" ~code:"invariant"
      ~detail:"wphase budgets met?!" ()
  in
  String.iter
    (fun ch ->
      let ok =
        (ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9')
        || ch = '.' || ch = '_' || ch = '-'
      in
      if not ok then
        Alcotest.failf "slug %S has unsafe char %c" (Fingerprint.slug fp) ch)
    (Fingerprint.slug fp)

(* ---------- fault sites ---------- *)

let test_fault_sites () =
  let pts = Fault.all_points in
  check int "seventeen instrumented sites" 17 (List.length pts);
  check bool "sorted and duplicate-free" true
    (List.sort_uniq String.compare pts = pts);
  List.iter
    (fun p ->
      check bool (Printf.sprintf "%s is known" p) true (Fault.is_known_point p))
    pts;
  check bool "bogus site rejected" false (Fault.is_known_point "bogus.site");
  check bool "prefix alone rejected" false (Fault.is_known_point "dphase");
  (* the enumeration covers both halves of the oracle's fault plan, plus
     the chaos proxy's network sites *)
  check bool "has an engine site" true (List.mem "wphase" pts);
  check bool "has an audit site" true (List.mem "audit.simplex" pts);
  check bool "has a storage site" true (List.mem "io.enospc" pts);
  check bool "has a network site" true (List.mem "net.torn-write" pts)

(* ---------- case generation ---------- *)

let test_gen_determinism () =
  for seed = 0 to 49 do
    let a = Gen_mut.case ~profile:small_profile ~seed () in
    let b = Gen_mut.case ~profile:small_profile ~seed () in
    if bench a <> bench b then
      Alcotest.failf "seed %d generated two different cases" seed
  done

let test_gen_validity () =
  (* every case elaborates and validates; the harness fuzzes the sizing
     stack, not the parser's rejection paths *)
  for seed = 0 to 99 do
    let nl = Gen_mut.case ~profile:small_profile ~seed () in
    (try Netlist.validate nl
     with exn ->
       Alcotest.failf "seed %d generated an invalid netlist: %s" seed
         (Printexc.to_string exn));
    if Netlist.gate_count nl < 1 then
      Alcotest.failf "seed %d generated a gateless netlist" seed
  done

let test_gen_boundary_shapes () =
  (* the 1-in-8 boundary cadence must actually surface extreme shapes *)
  let tiny = ref false and deep = ref false in
  for seed = 0 to 199 do
    let nl = Gen_mut.case ~profile:small_profile ~seed () in
    if Netlist.gate_count nl <= 2 then tiny := true;
    if Netlist.depth nl >= 40 then deep := true
  done;
  check bool "a near-degenerate case appeared" true !tiny;
  check bool "a deep-chain case appeared" true !deep

(* ---------- shrinking ---------- *)

let measure_le (a1, a2, a3, a4) (b1, b2, b3, b4) =
  compare (a1, a2, a3, a4) (b1, b2, b3, b4) <= 0

let test_shrink_terminates_and_shrinks () =
  for seed = 0 to 9 do
    let nl = Gen_mut.case ~profile:small_profile ~seed () in
    (* an always-true keep must reach a very small fixpoint *)
    let shrunk = Shrink.shrink ~max_checks:2000 ~keep:(fun _ -> true) nl in
    check bool
      (Printf.sprintf "seed %d measure never grows" seed)
      true
      (measure_le (Shrink.measure shrunk) (Shrink.measure nl));
    if Netlist.gate_count shrunk > 2 then
      Alcotest.failf "seed %d: trivial keep left %d gates" seed
        (Netlist.gate_count shrunk)
  done

let test_shrink_rejecting_keep_is_identity () =
  let nl = Gen_mut.case ~profile:small_profile ~seed:5 () in
  let shrunk = Shrink.shrink ~keep:(fun _ -> false) nl in
  check string "nothing accepted, input returned" (bench nl) (bench shrunk)

let test_shrink_respects_budget () =
  let nl = Gen_mut.case ~profile:small_profile ~seed:8 () in
  let calls = ref 0 in
  let keep _ = incr calls; true in
  ignore (Shrink.shrink ~max_checks:7 ~keep nl);
  check bool "keep evaluations bounded" true (!calls <= 7)

let test_shrink_preserves_keep_property () =
  (* every accepted step keeps the predicate, so the result must satisfy
     it — here a structural property the oracle-independent lattice could
     easily violate if substitution were wrong *)
  for seed = 0 to 9 do
    let nl = Gen_mut.case ~profile:small_profile ~seed () in
    let floor = min 2 (Netlist.gate_count nl) in
    let keep c = Netlist.gate_count c >= floor && Netlist.input_count c >= 1 in
    let shrunk = Shrink.shrink ~max_checks:500 ~keep nl in
    check bool (Printf.sprintf "seed %d keep holds on result" seed) true
      (keep shrunk);
    (* the result is still a valid netlist *)
    try Netlist.validate shrunk
    with exn ->
      Alcotest.failf "seed %d shrunk to an invalid netlist: %s" seed
        (Printexc.to_string exn)
  done

let test_shrink_preserves_fingerprint () =
  (* the campaign's real keep: the oracle still reports the same
     fingerprint. With a fault armed at wphase every case fails with
     engine/fault-injected/wphase, and the shrunk reproducer must too. *)
  let cfg = cheap_oracle ~fault_site:"wphase" () in
  let nl = Gen_mut.case ~profile:small_profile ~seed:1 () in
  let fps c = Oracle.fingerprints (Oracle.run cfg c) in
  match fps nl with
  | [] -> Alcotest.fail "armed fault did not fire on the original"
  | fp :: _ ->
    let keep c = List.exists (Fingerprint.equal fp) (fps c) in
    let shrunk = Shrink.shrink ~max_checks:120 ~keep nl in
    check bool "fingerprint survives shrinking" true (keep shrunk);
    check bool "shrunk is no larger" true
      (measure_le (Shrink.measure shrunk) (Shrink.measure nl));
    (* bit-deterministic replay: two oracle runs on the shrunk
       reproducer agree exactly *)
    let a = fps shrunk and b = fps shrunk in
    check int "replay lists same length" (List.length a) (List.length b);
    List.iter2
      (fun x y ->
        check bool "replay fingerprints identical" true (Fingerprint.equal x y))
      a b

(* ---------- corpus ---------- *)

let sample_repro () =
  { Corpus.fingerprint =
      Fingerprint.make ~phase:"engine" ~code:"fault-injected" ~detail:"wphase"
        ();
    seed = 123456789;
    config =
      { (cheap_oracle ~fault_site:"wphase" ()) with
        target_factor = 0.1 +. 0.2;  (* not prettily representable *)
        tolerance = 1e-300;
        solvers = [ `Simplex; `Ssp; `Bellman_ford ] };
    netlist = Generators.c17 () }

let test_corpus_roundtrip () =
  let dir = fresh_dir "corpus-rt" in
  let r = sample_repro () in
  let path =
    match Corpus.save ~dir r with
    | Ok p -> p
    | Error e -> Alcotest.failf "save: %s" (Diag.to_string e)
  in
  (match Corpus.load path with
  | Error e -> Alcotest.failf "load: %s" (Diag.to_string e)
  | Ok r' ->
    check bool "fingerprint" true
      (Fingerprint.equal r.fingerprint r'.Corpus.fingerprint);
    check int "seed" r.seed r'.Corpus.seed;
    let c = r.config and c' = r'.Corpus.config in
    check bool "target factor bit-exact" true
      (Int64.bits_of_float c.Oracle.target_factor
      = Int64.bits_of_float c'.Oracle.target_factor);
    check bool "tolerance bit-exact" true
      (Int64.bits_of_float c.tolerance = Int64.bits_of_float c'.tolerance);
    check int "dw iterations" c.dw_iterations c'.dw_iterations;
    check int "budget pivots" c.budget_pivots c'.budget_pivots;
    check bool "solvers" true (c.solvers = c'.solvers);
    check bool "differential" true (c.differential = c'.differential);
    check bool "fault site" true (c.fault_site = c'.fault_site);
    check string "netlist" (bench r.netlist) (bench r'.Corpus.netlist));
  rm_rf dir

let test_corpus_rejects_garbage () =
  let dir = fresh_dir "corpus-bad" in
  let bad = Filename.concat dir "bad.repro" in
  let oc = open_out bad in
  output_string oc "not a repro\n";
  close_out oc;
  (match Corpus.load bad with
  | Error (Diag.Checkpoint_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* truncation (crash mid-copy) is detected by the end marker *)
  let r = sample_repro () in
  let good =
    match Corpus.save ~dir r with
    | Ok p -> p
    | Error e -> Alcotest.failf "save: %s" (Diag.to_string e)
  in
  let text =
    let ic = open_in_bin good in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let oc = open_out_bin bad in
  output_string oc (String.sub text 0 (String.length text * 2 / 3));
  close_out oc;
  (match Corpus.load bad with
  | Error (Diag.Checkpoint_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "truncated repro accepted");
  (match Corpus.load (Filename.concat dir "absent.repro") with
  | Error (Diag.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "missing repro accepted");
  rm_rf dir

let test_corpus_list () =
  let dir = fresh_dir "corpus-list" in
  check bool "missing dir lists empty" true
    (Corpus.list (Filename.concat dir "nope") = []);
  let r = sample_repro () in
  (match Corpus.save ~dir r with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save: %s" (Diag.to_string e));
  let oc = open_out (Filename.concat dir "README") in
  output_string oc "not a repro\n";
  close_out oc;
  check int "only .repro files listed" 1 (List.length (Corpus.list dir));
  rm_rf dir

(* ---------- campaigns ---------- *)

let campaign_config ?corpus_dir ?(iterations = 6) ?fault_site () =
  { Campaign.seed = 11;
    iterations;
    oracle = cheap_oracle ?fault_site ();
    profile = small_profile;
    corpus_dir;
    known = [];
    shrink = true;
    shrink_checks = 60;
    isolate = false;
    timeout_seconds = None }

let test_campaign_deterministic () =
  let cfg = campaign_config ~fault_site:"dphase.simplex" () in
  let digest (r : Campaign.report) =
    ( r.cases,
      r.failing_cases,
      r.fresh,
      List.map
        (fun (b : Campaign.bucket) ->
          (Fingerprint.to_string b.fingerprint, b.count, b.first_seed))
        r.buckets )
  in
  check bool "two runs, same report" true
    (digest (Campaign.run cfg) = digest (Campaign.run cfg))

let test_campaign_seed_derivation () =
  let a = Campaign.case_seeds ~seed:42 ~n:10 in
  let b = Campaign.case_seeds ~seed:42 ~n:10 in
  let c = Campaign.case_seeds ~seed:43 ~n:10 in
  check bool "stable" true (a = b);
  check bool "seed-sensitive" true (a <> c)

let test_campaign_finds_shrinks_and_replays () =
  let dir = fresh_dir "campaign-e2e" in
  let cfg = campaign_config ~corpus_dir:dir ~fault_site:"wphase" () in
  let report = Campaign.run cfg in
  check bool "planted fault found" true (report.Campaign.fresh >= 1);
  let b =
    match
      List.find_opt
        (fun (b : Campaign.bucket) ->
          b.fingerprint.Fingerprint.code = "fault-injected")
        report.buckets
    with
    | Some b -> b
    | None -> Alcotest.fail "no fault-injected bucket"
  in
  (match b.shrunk_gates with
  | Some g -> check bool "shrunk to <= 25 gates" true (g <= 25)
  | None -> Alcotest.fail "bucket was not shrunk");
  check bool "repro replayed deterministically" true
    (b.replay_deterministic = Some true);
  let path =
    match b.repro_path with
    | Some p -> p
    | None -> Alcotest.fail "no repro written"
  in
  (match Campaign.replay path with
  | Error e -> Alcotest.failf "replay: %s" (Diag.to_string e)
  | Ok r ->
    check bool "reproduced" true r.Campaign.reproduced;
    check bool "deterministic" true r.deterministic);
  (* a second campaign over the same corpus sees the bucket as known *)
  let report2 = Campaign.run cfg in
  check int "corpus suppresses fresh" 0 report2.Campaign.fresh;
  check bool "bucket still reported" true (report2.buckets <> []);
  rm_rf dir

let test_campaign_known_list () =
  (* the audit.* sites live in the LP-differential stage, so this also
     covers the oracle's differential path end to end *)
  let cfg0 = campaign_config ~fault_site:"audit.ssp" ~iterations:3 () in
  let cfg0 =
    { cfg0 with Campaign.oracle = { cfg0.oracle with differential = true } }
  in
  let report = Campaign.run cfg0 in
  check bool "audit fault found" true (report.Campaign.fresh >= 1);
  let known =
    List.map
      (fun (b : Campaign.bucket) -> Fingerprint.to_string b.fingerprint)
      report.buckets
  in
  let report' = Campaign.run { cfg0 with known } in
  check int "known list suppresses fresh" 0 report'.Campaign.fresh

let () =
  Alcotest.run "fuzz"
    [ ( "fingerprint",
        [ Alcotest.test_case "string round trip" `Quick
            test_fingerprint_roundtrip;
          Alcotest.test_case "equality and order" `Quick test_fingerprint_order;
          Alcotest.test_case "slug is filename-safe" `Quick
            test_fingerprint_slug ] );
      ( "fault-sites",
        [ Alcotest.test_case "enumeration" `Quick test_fault_sites ] );
      ( "gen",
        [ Alcotest.test_case "deterministic in the seed" `Quick
            test_gen_determinism;
          Alcotest.test_case "cases are valid" `Quick test_gen_validity;
          Alcotest.test_case "boundary shapes appear" `Quick
            test_gen_boundary_shapes ] );
      ( "shrink",
        [ Alcotest.test_case "terminates at a small fixpoint" `Quick
            test_shrink_terminates_and_shrinks;
          Alcotest.test_case "rejecting keep returns the input" `Quick
            test_shrink_rejecting_keep_is_identity;
          Alcotest.test_case "check budget respected" `Quick
            test_shrink_respects_budget;
          Alcotest.test_case "keep property preserved" `Quick
            test_shrink_preserves_keep_property;
          Alcotest.test_case "fingerprint preserved, replay bit-identical"
            `Slow test_shrink_preserves_fingerprint ] );
      ( "corpus",
        [ Alcotest.test_case "bit-exact round trip" `Quick
            test_corpus_roundtrip;
          Alcotest.test_case "garbage and truncation rejected" `Quick
            test_corpus_rejects_garbage;
          Alcotest.test_case "listing" `Quick test_corpus_list ] );
      ( "campaign",
        [ Alcotest.test_case "deterministic in the seed" `Slow
            test_campaign_deterministic;
          Alcotest.test_case "case-seed derivation" `Quick
            test_campaign_seed_derivation;
          Alcotest.test_case "find, shrink, replay end to end" `Slow
            test_campaign_finds_shrinks_and_replays;
          Alcotest.test_case "known list suppresses" `Slow
            test_campaign_known_list ] ) ]
