(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 3), plus ablations and Bechamel microbenchmarks.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # Table 1 only
     dune exec bench/main.exe -- fig7      # Figure 7 series
     dune exec bench/main.exe -- iters     # convergence traces (Sec. 3 text)
     dune exec bench/main.exe -- ablate    # design-choice ablations
     dune exec bench/main.exe -- bechamel  # per-experiment microbenchmarks

   Absolute numbers differ from the paper (different technology calibration,
   synthetic ISCAS85 stand-ins, 2026 hardware vs an UltraSparc 10); the
   claims under reproduction are the *shapes*: who wins, by roughly what
   factor, and where. EXPERIMENTS.md records paper-vs-measured per row. *)

open Minflo

let tech = Tech.default_130nm

(* content-keyed and shared with the batch runner / CLI sweep *)
let model_of name = Model_cache.model ~tech (Iscas85.circuit name)

(* ---------------------------------------------------------------- Table 1 *)

(* The paper reports rows "where the area penalty is within 1.5-1.75x that
   of a minimum sized circuit". Where its delay-spec column already puts our
   stand-in in (or above) that band we use it verbatim; where our circuit is
   barely stressed at that spec (the padding-heavy stand-ins have slacker
   off-path logic than the originals), we tighten the factor until the TILOS
   penalty enters the band — the paper's own selection criterion. *)
let band_lo = 1.5

let table1_row (info : Iscas85.info) =
  let model = model_of info.name in
  let p0 = Sweep.at_factor model ~factor:info.delay_spec in
  let is_adder = String.length info.name >= 5 && String.sub info.name 0 5 = "adder" in
  if is_adder || (not p0.tilos_met) || p0.tilos_area_ratio >= band_lo -. 0.05 then p0
  else begin
    let rec tighten factor best attempts =
      if attempts = 0 then best
      else begin
        let factor = factor *. 0.93 in
        let p = Sweep.at_factor model ~factor in
        if not p.tilos_met then best
        else if p.tilos_area_ratio >= band_lo then p
        else tighten factor p (attempts - 1)
      end
    in
    tighten info.delay_spec p0 14
  end

let run_table1 () =
  print_endline "== Table 1: area savings of MINFLOTRANSIT over TILOS ==";
  print_endline
    "   (paper columns shown for reference; CPU seconds are this machine)";
  let t =
    Table.create
      ~columns:
        [ ("circuit", Table.Left); ("gates", Table.Right);
          ("gates(paper)", Table.Right); ("factor", Table.Right);
          ("spec(paper)", Table.Right); ("TILOS area", Table.Right);
          ("saving %", Table.Right); ("saving(paper)", Table.Right);
          ("iters", Table.Right); ("t TILOS s", Table.Right);
          ("t MINFLO s", Table.Right); ("ratio(paper)", Table.Right) ]
  in
  List.iter
    (fun (info : Iscas85.info) ->
      let model = model_of info.name in
      let p = table1_row info in
      let time_ratio =
        if p.tilos_seconds > 0.0 then
          (p.tilos_seconds +. p.minflo_extra_seconds) /. p.tilos_seconds
        else nan
      in
      Table.add_row t
        [ info.name;
          string_of_int (Delay_model.num_vertices model);
          string_of_int info.gates_published;
          Printf.sprintf "%.2f" p.factor;
          Printf.sprintf "%.2f" info.delay_spec;
          (if p.tilos_met then Printf.sprintf "%.2fx" p.tilos_area_ratio else "unmet");
          (if p.tilos_met then Printf.sprintf "%.1f" p.saving_pct else "-");
          Printf.sprintf "%.1f" info.paper_area_saving_pct;
          string_of_int p.iterations;
          Printf.sprintf "%.2f" p.tilos_seconds;
          Printf.sprintf "%.2f" (p.tilos_seconds +. p.minflo_extra_seconds);
          Printf.sprintf "%.1fx"
            (info.paper_cpu_ours_s /. info.paper_cpu_tilos_s) ];
      ignore time_ratio)
    Iscas85.suite;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------- Figure 7 *)

let run_fig7 () =
  print_endline "== Figure 7: area-delay curves, TILOS vs MINFLOTRANSIT ==";
  let series name factors =
    let model = model_of name in
    Printf.printf "-- %s (area and delay normalized to the minimum-size circuit)\n" name;
    let t =
      Table.create
        ~columns:
          [ ("delay/Dmin", Table.Right); ("TILOS area", Table.Right);
            ("MINFLO area", Table.Right); ("saving %", Table.Right) ]
    in
    List.iter
      (fun (p : Sweep.point) ->
        Table.add_row t
          [ Printf.sprintf "%.2f" p.factor;
            (if p.tilos_met then Printf.sprintf "%.3f" p.tilos_area_ratio else "unmet");
            (if p.tilos_met then Printf.sprintf "%.3f" p.minflo_area_ratio else "-");
            (if p.tilos_met then Printf.sprintf "%.1f" p.saving_pct else "-") ])
      (Sweep.curve model ~factors);
    Table.print t
  in
  (* paper sweeps 0.2..1.0; our floors sit near 0.27 (c432) / 0.29 (c6288) *)
  series "c432" [ 0.3; 0.35; 0.4; 0.5; 0.6; 0.8; 1.0 ];
  series "c6288" [ 0.4; 0.5; 0.65; 0.8; 1.0 ];
  print_endline
    "   Expected shape: MINFLOTRANSIT everywhere at or below TILOS, gap\n\
    \   widening at tight targets, largest on the multiplier.";
  print_newline ()

(* -------------------------------------------------- Sec. 3: iteration text *)

let run_iters () =
  print_endline
    "== Convergence: 'only a few tens of iterations were required' ==";
  let t =
    Table.create
      ~columns:
        [ ("circuit", Table.Left); ("factor", Table.Right);
          ("iterations", Table.Right); ("area trace (first->last)", Table.Left) ]
  in
  List.iter
    (fun (name, factor) ->
      let model = model_of name in
      let target = factor *. Sweep.dmin model in
      let r = Minflotransit.optimize model ~target in
      let trace =
        match r.trace with
        | [] -> "-"
        | l ->
          let first = List.hd l and last = List.nth l (List.length l - 1) in
          Printf.sprintf "%.0f -> %.0f (tilos %.0f)" first.area last.area r.tilos.area
      in
      Table.add_row t
        [ name; Printf.sprintf "%.2f" factor; string_of_int r.iterations; trace ])
    [ ("c432", 0.4); ("c499", 0.57); ("c880", 0.4); ("c1355", 0.4) ];
  Table.print t;
  print_newline ()

(* -------------------------------------------------------------- ablations *)

let run_ablate () =
  print_endline "== Ablations (design choices called out in DESIGN.md) ==";
  (* 1. D-phase solver: network simplex vs SSP *)
  let model = model_of "c432" in
  let target = 0.4 *. Sweep.dmin model in
  let tilos = Tilos.size model ~target in
  let delays = Delay_model.delays model tilos.sizes in
  let time_solver solver =
    let t0 = Unix.gettimeofday () in
    let r =
      Dphase.solve
        ~options:{ Dphase.default_options with solver }
        model ~sizes:tilos.sizes ~delays ~deadline:target
    in
    let dt = Unix.gettimeofday () -. t0 in
    match r with
    | Ok o -> (dt, o.objective)
    | Error e -> failwith (Diag.to_string e)
  in
  let ts, os_ = time_solver `Simplex in
  let tp, op = time_solver `Ssp in
  Printf.printf "D-phase solver on c432 (same optimum expected):\n";
  Printf.printf "  network simplex: %.4fs  objective %.4g\n" ts os_;
  Printf.printf "  SSP (oracle):    %.4fs  objective %.4g\n" tp op;
  (* 2. balanced-configuration seed: ALAP vs ASAP (Theorem 1: same optimum) *)
  let with_mode balance_mode =
    Dphase.solve
      ~options:{ Dphase.default_options with balance_mode }
      model ~sizes:tilos.sizes ~delays ~deadline:target
  in
  (match (with_mode `Alap, with_mode `Asap) with
  | Ok a, Ok b ->
    Printf.printf
      "balanced-configuration seed (Theorem 1): ALAP objective %.6g, ASAP %.6g\n"
      a.objective b.objective
  | _ -> print_endline "balance-mode ablation failed");
  (* 3. trust region eta *)
  print_endline "trust region eta (final saving % / iterations on c432 @ 0.4):";
  List.iter
    (fun eta0 ->
      let r =
        Minflotransit.refine_from
          ~options:{ Minflotransit.default_options with eta0 }
          model ~target ~init:tilos.sizes ~tilos
      in
      Printf.printf "  eta0 = %-5g -> %.2f%% in %d iterations\n" eta0
        r.area_saving_pct r.iterations)
    [ 0.05; 0.2; 0.5; 1.0 ];
  (* 4. the Lagrangian-relaxation comparator [8]: the paper argues LR's
     behavior beyond regular structures was undemonstrated; our LR matches
     MINFLOTRANSIT on the regular c432 but stalls on heterogeneous
     circuits, illustrating the point *)
  print_endline "vs Lagrangian relaxation [8] (area ratios, target 0.4 Dmin):";
  List.iter
    (fun name ->
      let model = model_of name in
      let target = 0.4 *. Sweep.dmin model in
      let a0 = Sweep.min_area model in
      let tilos = Tilos.size model ~target in
      let lr = Lagrangian.size model ~target in
      let mf = Minflotransit.refine_from model ~target ~init:tilos.sizes ~tilos in
      Printf.printf "  %-6s TILOS %.3f | LR %.3f | MINFLOTRANSIT %.3f\n" name
        (tilos.area /. a0) (lr.area /. a0) (mf.area /. a0))
    [ "c432"; "c880" ];
  (* 5. simultaneous wire sizing (Section 2.1 capability) *)
  let nlw = Iscas85.circuit "c432" in
  let mw = Elmore.with_wires tech nlw in
  let pw = Sweep.at_factor mw ~factor:0.4 in
  Printf.printf
    "wire sizing on c432 @ 0.4 (gates+wires, %d variables): saving %.1f%% \
     over TILOS in %d iterations\n"
    (Delay_model.num_vertices mw) pw.saving_pct pw.iterations;
  (* 5. Theorem 3 probe: random feasible perturbations should not improve a
     converged MINFLOTRANSIT solution, but do improve TILOS *)
  let probe_point label sizes =
    let r =
      Optimality.probe ~trials:150 ~seed:17 model ~target ~sizes
    in
    Printf.printf
      "  %-14s %3d/%d perturbations improved; best gain %.3f%%\n" label
      r.improved r.trials r.best_gain_pct
  in
  print_endline "local-optimality probe on c432 @ 0.4 (Theorem 3):";
  probe_point "TILOS" tilos.sizes;
  let mf = Minflotransit.refine_from model ~target ~init:tilos.sizes ~tilos in
  probe_point "MINFLOTRANSIT" mf.sizes;
  (* 6. the low-power angle of [13]: smaller area at equal delay also cuts
     switching power *)
  let nlp = Iscas85.circuit "c432" in
  let act = Activity.estimate ~patterns:1024 ~seed:99 nlp in
  let p_min = Power.min_size_baseline tech nlp ~activity:act in
  let p_tilos = Power.dynamic tech nlp ~activity:act ~sizes:tilos.sizes in
  let p_mf = Power.dynamic tech nlp ~activity:act ~sizes:mf.sizes in
  Printf.printf
    "switching power on c432 (normalized to minimum size): TILOS %.2fx, \
     MINFLOTRANSIT %.2fx\n"
    (p_tilos.total /. p_min.total)
    (p_mf.total /. p_min.total);
  (* 7. TILOS bump factor sensitivity of the seed *)
  print_endline "TILOS bump factor (seed quality, c432 @ 0.4):";
  List.iter
    (fun bump ->
      let r = Tilos.size ~bump model ~target in
      Printf.printf "  bump %.2f -> area ratio %.3f, %d bumps\n" bump
        (r.area /. Sweep.min_area model)
        r.bumps)
    [ 1.05; 1.1; 1.3 ];
  print_newline ()

(* ------------------------------------------------- run-time scaling claim *)

let run_scaling () =
  print_endline
    "== Run-time scaling: 'near linear run-time dependence on the size of \
     the circuit' (Sec. 1) ==";
  let t =
    Table.create
      ~columns:
        [ ("gates", Table.Right); ("TILOS s", Table.Right);
          ("D/W refine s", Table.Right); ("total s", Table.Right);
          ("us per gate", Table.Right) ]
  in
  List.iter
    (fun gates ->
      let nl = Generators.random_dag ~gates ~inputs:(max 8 (gates / 16))
                 ~outputs:(max 4 (gates / 32)) ~seed:(7 * gates) () in
      let model = Elmore.of_netlist tech nl in
      let target = 0.5 *. Sweep.dmin model in
      let t0 = Unix.gettimeofday () in
      let tilos = Tilos.size model ~target in
      let t1 = Unix.gettimeofday () in
      if tilos.met then begin
        let _ = Minflotransit.refine_from model ~target ~init:tilos.sizes ~tilos in
        let t2 = Unix.gettimeofday () in
        Table.add_row t
          [ string_of_int gates;
            Printf.sprintf "%.2f" (t1 -. t0);
            Printf.sprintf "%.2f" (t2 -. t1);
            Printf.sprintf "%.2f" (t2 -. t0);
            Printf.sprintf "%.0f" (1e6 *. (t2 -. t0) /. float_of_int gates) ]
      end
      else Table.add_row t [ string_of_int gates; "unmet"; "-"; "-"; "-" ])
    [ 200; 400; 800; 1600; 3200 ];
  Table.print t;
  print_endline
    "   Shape check: us-per-gate should stay within a small constant factor\n\
    \   as the circuit grows 16x (the paper's near-linear claim).";
  print_newline ()

(* ------------------------------------------------------------- bechamel *)

let run_bechamel () =
  print_endline "== Bechamel microbenchmarks (one per experiment component) ==";
  let open Bechamel in
  let open Toolkit in
  let c432 = model_of "c432" in
  let d0 = Sweep.dmin c432 in
  let tilos_seed = Tilos.size c432 ~target:(0.5 *. d0) in
  let delays = Delay_model.delays c432 tilos_seed.sizes in
  let sizes = tilos_seed.sizes in
  let tests =
    Test.make_grouped ~name:"minflo"
      [ (* Table 1 pipeline pieces *)
        Test.make ~name:"sta/c432"
          (Staged.stage (fun () ->
               ignore (Sta.analyze c432 ~delays ~deadline:(0.5 *. d0))));
        Test.make ~name:"dphase/c432"
          (Staged.stage (fun () ->
               ignore
                 (Dphase.solve c432 ~sizes ~delays ~deadline:(0.5 *. d0))));
        Test.make ~name:"wphase/c432"
          (Staged.stage (fun () ->
               ignore (Wphase.solve c432 ~budgets:delays)));
        Test.make ~name:"tilos/c17@0.5"
          (Staged.stage (fun () ->
               let m = Elmore.of_netlist tech (Generators.c17 ()) in
               ignore (Tilos.size m ~target:(0.5 *. Sweep.dmin m))));
        (* Figure 7 sweep step on a small instance *)
        Test.make ~name:"fig7-point/adder8@0.5"
          (Staged.stage
             (let m =
                Elmore.of_netlist tech
                  (Generators.ripple_carry_adder ~bits:8 ())
              in
              fun () -> ignore (Sweep.at_factor m ~factor:0.5)));
        (* flow substrate *)
        Test.make ~name:"simplex/random-mcf"
          (Staged.stage
             (let rng = Rng.create 42 in
              let n = 200 in
              let arcs =
                Array.init 800 (fun _ ->
                    { Mcf.src = Rng.int rng n; dst = Rng.int rng n;
                      cap = 5 + Rng.int rng 20; cost = Rng.int rng 50 - 10 })
              in
              let supply = Array.make n 0 in
              for _ = 1 to 20 do
                let s = Rng.int rng n and t = Rng.int rng n in
                supply.(s) <- supply.(s) + 3;
                supply.(t) <- supply.(t) - 3
              done;
              let p = { Mcf.num_nodes = n; arcs; supply } in
              fun () -> ignore (Network_simplex.solve p))) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name o ->
      match Analyze.OLS.estimates o with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let t = Table.create ~columns:[ ("benchmark", Table.Left); ("time/run", Table.Right) ] in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row t [ name; pretty ])
    (List.sort compare !rows);
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ main *)

let () =
  let t0 = Unix.gettimeofday () in
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match what with
  | "table1" -> run_table1 ()
  | "fig7" -> run_fig7 ()
  | "iters" -> run_iters ()
  | "ablate" -> run_ablate ()
  | "scaling" -> run_scaling ()
  | "bechamel" -> run_bechamel ()
  | "all" ->
    run_table1 ();
    run_fig7 ();
    run_iters ();
    run_ablate ();
    run_scaling ();
    run_bechamel ()
  | other ->
    Printf.eprintf
      "unknown command %S (use table1|fig7|iters|ablate|scaling|bechamel|all)\n" other;
    exit 1);
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
