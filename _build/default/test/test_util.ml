(* Unit and property tests for the util substrate. *)

module Vec = Minflo_util.Vec
module Heap = Minflo_util.Heap
module Rng = Minflo_util.Rng
module Stats = Minflo_util.Stats
module Bitset = Minflo_util.Bitset
module Union_find = Minflo_util.Union_find
module Table = Minflo_util.Table

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- Vec ---------- *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    let idx = Vec.push v (i * i) in
    check int "index" i idx
  done;
  check int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check int "get" (i * i) (Vec.get v i)
  done

let test_vec_pop () =
  let v = Vec.create ~dummy:(-1) () in
  ignore (Vec.push v 1);
  ignore (Vec.push v 2);
  check int "pop" 2 (Vec.pop v);
  check int "last" 1 (Vec.last v);
  check int "pop" 1 (Vec.pop v);
  check bool "empty" true (Vec.is_empty v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  ignore (Vec.push v 42);
  Alcotest.check_raises "get oob"
    (Invalid_argument "Vec: index 1 out of bounds [0,1)") (fun () ->
      ignore (Vec.get v 1))

let test_vec_iter_fold () =
  let v = Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  check int "fold" 10 (Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check int "iteri count" 4 (List.length !seen);
  check bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  check (Alcotest.list int) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v)

let test_vec_clear () =
  let v = Vec.of_array ~dummy:0 [| 5; 6 |] in
  Vec.clear v;
  check int "cleared" 0 (Vec.length v);
  ignore (Vec.push v 7);
  check int "reuse" 7 (Vec.get v 0)

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (k, x) -> Heap.push h ~key:k x)
    [ (5, 50); (3, 30); (8, 80); (1, 10); (4, 40) ];
  let popped = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _) ->
      popped := k :: !popped;
      drain ()
  in
  drain ();
  check (Alcotest.list int) "sorted" [ 1; 3; 4; 5; 8 ] (List.rev !popped)

let test_heap_decrease_key () =
  let h = Heap.create () in
  Heap.push h ~key:10 1;
  Heap.push h ~key:20 2;
  Heap.push h ~key:5 2;
  (* element 2 superseded: only key 5 counts *)
  (match Heap.pop_min h with
  | Some (5, 2) -> ()
  | other ->
    Alcotest.failf "expected (5,2), got %s"
      (match other with
      | None -> "None"
      | Some (k, v) -> Printf.sprintf "(%d,%d)" k v));
  (match Heap.pop_min h with
  | Some (10, 1) -> ()
  | _ -> Alcotest.fail "expected (10,1)");
  check bool "empty" true (Heap.is_empty h)

(* Regression for a sift_down bug found during development: interleave
   pushes (with decrease-key semantics) and pops, and check each popped key
   against a reference map. *)
let prop_heap_vs_reference =
  QCheck.Test.make ~name:"heap matches reference under interleaved ops"
    ~count:300 QCheck.small_nat (fun seed ->
      let rng = Rng.create ((seed * 48271) + 9) in
      let h = Heap.create () in
      let latest = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to 80 do
        if Rng.int rng 3 < 2 then begin
          let x = Rng.int rng 12 and k = Rng.int rng 25 in
          match Hashtbl.find_opt latest x with
          | Some k' when k' <= k -> () (* dijkstra never pushes worse keys *)
          | _ ->
            Heap.push h ~key:k x;
            Hashtbl.replace latest x k
        end
        else begin
          match Heap.pop_min h with
          | None -> if Hashtbl.length latest <> 0 then ok := false
          | Some (k, x) ->
            (match Hashtbl.find_opt latest x with
            | Some k' when k' = k -> ()
            | _ -> ok := false);
            Hashtbl.iter (fun _ k' -> if k' < k then ok := false) latest;
            Hashtbl.remove latest x
        end
      done;
      !ok)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let h = Heap.create () in
      (* make values distinct so lazy deletion does not kick in *)
      List.iteri (fun i (k, _) -> Heap.push h ~key:k i) pairs;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (k, _) -> k >= last && drain k
      in
      drain min_int)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check bool "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    check bool "in range" true (x >= 0 && x < 10);
    let f = Rng.float r 2.5 in
    check bool "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "is permutation" true (sorted = Array.init 50 Fun.id)

(* ---------- Stats ---------- *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean xs);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median xs);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.minimum xs);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.maximum xs);
  check (Alcotest.float 1e-9) "sum" 10.0 (Stats.sum xs);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile xs 100.0)

let test_stats_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.stddev xs)

let test_stats_geomean () =
  check (Alcotest.float 1e-9) "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |])

(* ---------- Bitset ---------- *)

let test_bitset_ops () =
  let s = Bitset.create 100 in
  check bool "initially empty" false (Bitset.mem s 5);
  Bitset.add s 5;
  Bitset.add s 99;
  Bitset.add s 0;
  check bool "mem 5" true (Bitset.mem s 5);
  check bool "mem 99" true (Bitset.mem s 99);
  check int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 5;
  check bool "removed" false (Bitset.mem s 5);
  check int "cardinal" 2 (Bitset.cardinal s);
  Bitset.clear s;
  check int "cleared" 0 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 8)

(* ---------- Union_find ---------- *)

let test_union_find () =
  let uf = Union_find.create 10 in
  check int "components" 10 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  check bool "same" true (Union_find.same uf 0 2);
  check bool "diff" false (Union_find.same uf 0 3);
  check int "components" 8 (Union_find.count uf);
  Union_find.union uf 0 2;
  check int "idempotent union" 8 (Union_find.count uf)

(* ---------- Table ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "adder32"; "480" ];
  Table.add_separator t;
  Table.add_row t [ "c6288"; "2416" ];
  let s = Table.render t in
  check bool "has adder32" true (contains s "adder32");
  check bool "has 2416" true (contains s "2416");
  check bool "right aligned" true (contains s "   n |" || contains s " n |")

let test_stats_empty_and_singleton () =
  check bool "mean of empty is nan" true (Float.is_nan (Stats.mean [||]));
  check bool "stddev of empty is nan" true (Float.is_nan (Stats.stddev [||]));
  check (Alcotest.float 1e-9) "singleton percentile" 7.0
    (Stats.percentile [| 7.0 |] 50.0);
  check (Alcotest.float 1e-9) "interpolated percentile" 1.5
    (Stats.percentile [| 1.0; 2.0 |] 50.0);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let test_rng_pick_and_copy () =
  let r = Rng.create 9 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    check bool "pick member" true (Array.exists (( = ) (Rng.pick r a)) a)
  done;
  let r1 = Rng.create 4 in
  ignore (Rng.int64 r1);
  let r2 = Rng.copy r1 in
  check bool "copy continues identically" true (Rng.int64 r1 = Rng.int64 r2);
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||]))

let test_vec_conversions () =
  let v = Vec.of_array ~dummy:0 [| 3; 1; 4 |] in
  check bool "to_array" true (Vec.to_array v = [| 3; 1; 4 |]);
  check bool "map_to_array" true (Vec.map_to_array (fun x -> x * 2) v = [| 6; 2; 8 |]);
  let empty = Vec.of_array ~dummy:0 [||] in
  check int "empty roundtrip" 0 (Array.length (Vec.to_array empty))

let test_table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "util"
    [ ( "vec",
        [ tc "push/get" `Quick test_vec_push_get;
          tc "pop/last" `Quick test_vec_pop;
          tc "bounds" `Quick test_vec_bounds;
          tc "iter/fold" `Quick test_vec_iter_fold;
          tc "clear" `Quick test_vec_clear;
          tc "conversions" `Quick test_vec_conversions ] );
      ( "heap",
        [ tc "ordering" `Quick test_heap_order;
          tc "decrease-key" `Quick test_heap_decrease_key;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_vs_reference ] );
      ( "rng",
        [ tc "deterministic" `Quick test_rng_deterministic;
          tc "bounds" `Quick test_rng_bounds;
          tc "shuffle" `Quick test_rng_shuffle_permutes;
          tc "pick/copy" `Quick test_rng_pick_and_copy ] );
      ( "stats",
        [ tc "basic" `Quick test_stats_basic;
          tc "stddev" `Quick test_stats_stddev;
          tc "geomean" `Quick test_stats_geomean;
          tc "empty/singleton" `Quick test_stats_empty_and_singleton ] );
      ( "bitset",
        [ tc "ops" `Quick test_bitset_ops; tc "bounds" `Quick test_bitset_bounds ] );
      ("union_find", [ tc "basic" `Quick test_union_find ]);
      ( "table",
        [ tc "render" `Quick test_table_render; tc "arity" `Quick test_table_arity ] ) ]
