(* Tests for the SAT solver and the Tseitin/miter equivalence checker. *)

module Sat = Minflo_sat.Sat
module Cnf = Minflo_sat.Cnf
module BddCheck = Minflo_bdd.Check
module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate
module Gen = Minflo_netlist.Generators
module Transform = Minflo_netlist.Transform
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool

(* ---------- core solver ---------- *)

let test_trivial_sat () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  let b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a ];
  match Sat.solve s with
  | Sat.Sat m ->
    check bool "a false" false m.(a);
    check bool "b true" true m.(b)
  | Sat.Unsat -> Alcotest.fail "expected sat"

let test_trivial_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  Sat.add_clause s [ -a ];
  check bool "unsat" true (Sat.solve s = Sat.Unsat)

let test_empty_clause () =
  let s = Sat.create () in
  ignore (Sat.new_var s);
  Sat.add_clause s [];
  check bool "unsat" true (Sat.solve s = Sat.Unsat)

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: classically UNSAT and needs real search *)
  let s = Sat.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for i = 0 to 3 do
    Sat.add_clause s (Array.to_list p.(i))
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Sat.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  check bool "php(4,3) unsat" true (Sat.solve s = Sat.Unsat)

let test_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  let b = Sat.new_var s in
  Sat.add_clause s [ -a; b ];
  (match Sat.solve ~assumptions:[ a ] s with
  | Sat.Sat m -> check bool "b forced" true m.(b)
  | Sat.Unsat -> Alcotest.fail "sat expected");
  Sat.add_clause s [ -b ];
  check bool "unsat under a" true (Sat.solve ~assumptions:[ a ] s = Sat.Unsat);
  (* still satisfiable without the assumption *)
  match Sat.solve s with
  | Sat.Sat m -> check bool "a false" false m.(a)
  | Sat.Unsat -> Alcotest.fail "sat without assumptions expected"

(* random 3-SAT cross-checked against brute force *)
let prop_matches_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force on random 3-SAT"
    ~count:300 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 3) in
      let nvars = 3 + Rng.int rng 6 in
      let nclauses = 2 + Rng.int rng (4 * nvars) in
      let clauses =
        List.init nclauses (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Rng.int rng nvars in
                if Rng.bool rng then v else -v))
      in
      let s = Sat.create () in
      for _ = 1 to nvars do ignore (Sat.new_var s) done;
      List.iter (Sat.add_clause s) clauses;
      let brute =
        let sat = ref false in
        for bits = 0 to (1 lsl nvars) - 1 do
          let value v = (bits lsr (v - 1)) land 1 = 1 in
          if List.for_all
               (List.exists (fun l -> if l > 0 then value l else not (value (-l))))
               clauses
          then sat := true
        done;
        !sat
      in
      match Sat.solve s with
      | Sat.Sat m ->
        (* model must actually satisfy the clauses *)
        brute
        && List.for_all
             (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)))
             clauses
      | Sat.Unsat -> not brute)

(* ---------- miter equivalence ---------- *)

let test_miter_self () =
  check bool "c17 = c17" true (Cnf.equivalent (Gen.c17 ()) (Gen.c17 ()) = Cnf.Equivalent)

let test_miter_transforms () =
  List.iter
    (fun nl ->
      check bool "nand mapping" true
        (Cnf.equivalent nl (Transform.to_nand_inv nl) = Cnf.Equivalent))
    [ Gen.parity_tree ~width:5 (); Gen.comparator ~width:3 (); Gen.alu ~width:2 () ]

let test_miter_counterexample () =
  let make kind =
    let nl = Netlist.create () in
    let a = Netlist.add_input nl "a" in
    let b = Netlist.add_input nl "b" in
    let g = Netlist.add_gate nl "g" kind [ a; b ] in
    Netlist.mark_output nl g;
    Netlist.validate nl;
    nl
  in
  match Cnf.equivalent (make Gate.And) (make Gate.Or) with
  | Cnf.Differ cex ->
    let v n = List.assoc n cex in
    check bool "valid cex" true ((v "a" && v "b") <> (v "a" || v "b"))
  | _ -> Alcotest.fail "expected Differ"

let prop_sat_agrees_with_bdd =
  QCheck.Test.make
    ~name:"SAT miter and BDD checker give the same equivalence verdicts"
    ~count:60 QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:25 ~inputs:5 ~outputs:3 ~seed:(seed + 71) () in
      (* compare against a mutated copy half the time *)
      let other =
        if seed mod 2 = 0 then Transform.expand_xor nl
        else
          Gen.random_dag ~gates:25 ~inputs:5 ~outputs:3 ~seed:(seed + 72) ()
      in
      let sat_v =
        match Cnf.equivalent nl other with
        | Cnf.Equivalent -> true
        | Cnf.Differ _ -> false
        | Cnf.Interface_mismatch -> false
      in
      let bdd_v =
        match BddCheck.equivalent nl other with
        | BddCheck.Equivalent -> true
        | _ -> false
      in
      sat_v = bdd_v)

let test_output_satisfiable () =
  (* an AND output is satisfiable; a contradictory one is not *)
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let g = Netlist.add_gate nl "g" Gate.And [ a; a ] in
  let never = Netlist.add_gate nl "n" Gate.Not [ a ] in
  let contradiction = Netlist.add_gate nl "z" Gate.And [ g; never ] in
  Netlist.mark_output nl g;
  Netlist.mark_output nl contradiction;
  Netlist.validate nl;
  (match Cnf.output_satisfiable nl ~output:0 with
  | Some cex -> check bool "witness" true (List.assoc "a" cex)
  | None -> Alcotest.fail "expected witness");
  check bool "a and not a" true (Cnf.output_satisfiable nl ~output:1 = None)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sat"
    [ ( "solver",
        [ tc "trivial sat" `Quick test_trivial_sat;
          tc "trivial unsat" `Quick test_trivial_unsat;
          tc "empty clause" `Quick test_empty_clause;
          tc "pigeonhole" `Quick test_pigeonhole;
          tc "assumptions" `Quick test_assumptions;
          QCheck_alcotest.to_alcotest prop_matches_brute_force ] );
      ( "miter",
        [ tc "reflexive" `Quick test_miter_self;
          tc "transforms" `Quick test_miter_transforms;
          tc "counterexample" `Quick test_miter_counterexample;
          tc "output satisfiable" `Quick test_output_satisfiable;
          QCheck_alcotest.to_alcotest prop_sat_agrees_with_bdd ] ) ]
