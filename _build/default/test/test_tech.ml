(* Tests for the technology layer: gate models, Elmore coefficient
   extraction, the Delay_model invariants, and the transistor-level DAG. *)

module Gate = Minflo_netlist.Gate
module Netlist = Minflo_netlist.Netlist
module Gen = Minflo_netlist.Generators
module Transform = Minflo_netlist.Transform
module Tech = Minflo_tech.Tech
module Gate_model = Minflo_tech.Gate_model
module DM = Minflo_tech.Delay_model
module Elmore = Minflo_tech.Elmore
module Transistor = Minflo_tech.Transistor
module Digraph = Minflo_graph.Digraph

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let tech = Tech.default_130nm

(* ---------- gate model ---------- *)

let test_gate_model_stacks () =
  let inv = Gate_model.of_gate tech Gate.Not ~arity:1 in
  let nand2 = Gate_model.of_gate tech Gate.Nand ~arity:2 in
  let nand4 = Gate_model.of_gate tech Gate.Nand ~arity:4 in
  let nor4 = Gate_model.of_gate tech Gate.Nor ~arity:4 in
  check bool "nand4 drives worse than nand2" true (nand4.r_drive > nand2.r_drive);
  check bool "nand2 no weaker than inv" true (nand2.r_drive >= inv.r_drive);
  check bool "nor4 no better than nand4" true (nor4.r_drive >= nand4.r_drive);
  check int "inv transistors" 2 inv.transistors;
  check int "nand4 transistors" 8 nand4.transistors

let test_gate_model_xor_loading () =
  let x = Gate_model.of_gate tech Gate.Xor ~arity:2 in
  let n = Gate_model.of_gate tech Gate.Nand ~arity:2 in
  check bool "xor input cap heavier" true (x.c_input > n.c_input)

(* ---------- Elmore / Delay_model ---------- *)

let inv_chain k =
  let nl = Netlist.create ~name:"chain" () in
  let a = Netlist.add_input nl "a" in
  let prev = ref a in
  for i = 1 to k do
    prev := Netlist.add_gate nl (Printf.sprintf "i%d" i) Gate.Not [ !prev ]
  done;
  Netlist.mark_output nl !prev;
  Netlist.validate nl;
  nl

let test_elmore_chain_structure () =
  let model = Elmore.of_netlist tech (inv_chain 4) in
  check int "vertices" 4 (DM.num_vertices model);
  check int "edges" 3 (Digraph.edge_count model.graph);
  (* only the last vertex is a sink *)
  check int "sinks" 1
    (Array.fold_left (fun a s -> if s then a + 1 else a) 0 model.is_sink);
  DM.validate model

let test_elmore_delay_monotonicity () =
  let model = Elmore.of_netlist tech (inv_chain 3) in
  let x1 = DM.uniform_sizes model 1.0 in
  let x2 = DM.uniform_sizes model 1.0 in
  x2.(0) <- 2.0;
  (* upsizing vertex 0 lowers its own delay... *)
  check bool "own delay drops" true (DM.delay model x2 0 < DM.delay model x1 0);
  (* ...and vertex 0 has no upstream vertex here, so nothing else changes
     except through loading: vertex 1's delay is unchanged by x0 *)
  check bool "downstream unchanged" true
    (abs_float (DM.delay model x2 1 -. DM.delay model x1 1) < 1e-9);
  (* upsizing vertex 1 raises vertex 0's delay (load) *)
  let x3 = DM.uniform_sizes model 1.0 in
  x3.(1) <- 2.0;
  check bool "load effect" true (DM.delay model x3 0 > DM.delay model x1 0)

let test_elmore_po_load () =
  (* a PO gate carries the fixed output load in its b term *)
  let nl = inv_chain 2 in
  let model = Elmore.of_netlist tech nl in
  check bool "po b includes load" true (model.b.(1) > model.b.(0))

let test_elmore_multi_pin_loading () =
  (* gate reading the same net on two pins loads it twice *)
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let g1 = Netlist.add_gate nl "g1" Gate.Not [ a ] in
  let g2 = Netlist.add_gate nl "g2" Gate.Nand [ g1; g1 ] in
  Netlist.mark_output nl g2;
  Netlist.validate nl;
  let model = Elmore.of_netlist tech nl in
  let m2 = Gate_model.of_gate tech Gate.Nand ~arity:2 in
  let m1 = Gate_model.of_gate tech Gate.Not ~arity:1 in
  let expected = 2.0 *. m1.r_drive *. m2.c_input in
  let got = Array.fold_left (fun acc (_, a) -> acc +. a) 0.0 model.a_coeffs.(0) in
  check (Alcotest.float 1e-6) "double pin load" expected got

let test_delay_model_area () =
  let model = Elmore.of_netlist tech (inv_chain 3) in
  let x = DM.uniform_sizes model 2.0 in
  (* 3 inverters, 2 transistors each, size 2 *)
  check (Alcotest.float 1e-9) "area" 12.0 (DM.area model x)

let test_delay_model_check_sizes () =
  let model = Elmore.of_netlist tech (inv_chain 2) in
  check bool "ok" true (Result.is_ok (DM.check_sizes model [| 1.0; 2.0 |]));
  check bool "too small" true (Result.is_error (DM.check_sizes model [| 0.5; 2.0 |]));
  check bool "too big" true
    (Result.is_error (DM.check_sizes model [| 1.0; tech.max_size +. 1.0 |]));
  check bool "wrong length" true (Result.is_error (DM.check_sizes model [| 1.0 |]))

let test_elimination_blocks_triangular () =
  let model = Elmore.of_netlist tech (Gen.c17 ()) in
  let blocks = DM.elimination_blocks model in
  (* gate sizing: one vertex per block *)
  check int "block count" (DM.num_vertices model) (Array.length blocks);
  (* order: every coefficient target appears in a later block *)
  let pos = Array.make (DM.num_vertices model) 0 in
  Array.iteri (fun k b -> Array.iter (fun v -> pos.(v) <- k) b) blocks;
  Array.iteri
    (fun i coeffs ->
      Array.iter (fun (j, _) -> check bool "downstream" true (pos.(j) > pos.(i))) coeffs)
    model.a_coeffs

(* ---------- wire sizing (Section 2.1) ---------- *)

let test_with_wires_structure () =
  let nl = Gen.c17 () in
  let g = Elmore.of_netlist tech nl in
  let gw = Elmore.with_wires tech nl in
  check int "doubles vertices" (2 * DM.num_vertices g) (DM.num_vertices gw);
  DM.validate gw;
  (* sinks move from PO gates to PO wires *)
  let ngates = DM.num_vertices g in
  Array.iteri
    (fun i s -> if s then check bool "sink is a wire" true (i >= ngates))
    gw.is_sink;
  check bool "wire labels" true
    (Array.exists (fun l -> l = "22.wire") gw.labels)

let test_with_wires_monotone () =
  let nl = inv_chain 3 in
  let gw = Elmore.with_wires tech nl in
  let x = DM.uniform_sizes gw 1.0 in
  let ngates = 3 in
  (* widening a wire speeds the wire up (r/x falls) ... *)
  let x2 = Array.copy x in
  x2.(ngates) <- 4.0;
  check bool "wire speeds up" true (DM.delay gw x2 ngates < DM.delay gw x ngates);
  (* ... but loads its driver *)
  check bool "driver slows down" true (DM.delay gw x2 0 > DM.delay gw x 0)

let prop_with_wires_validates =
  QCheck.Test.make ~name:"wire-sizing models of random DAGs validate" ~count:30
    QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:30 ~inputs:5 ~outputs:3 ~seed:(seed + 400) () in
      DM.validate (Elmore.with_wires tech nl);
      true)

(* ---------- transistor level ---------- *)

let test_topology () =
  (match Transistor.topology Gate.Nand ~arity:3 with
  | Transistor.Series l, Transistor.Parallel r ->
    check int "pd stack" 3 (List.length l);
    check int "pu par" 3 (List.length r)
  | _ -> Alcotest.fail "bad nand topology");
  (match Transistor.topology Gate.Not ~arity:1 with
  | Transistor.Device 0, Transistor.Device 0 -> ()
  | _ -> Alcotest.fail "bad inverter topology");
  match Transistor.topology Gate.Xor ~arity:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "xor should be rejected"

let test_transistor_c17 () =
  let nl = Gen.c17 () in
  let model = Transistor.of_netlist tech nl in
  (* 6 NAND2 gates -> 4 transistors each *)
  check int "vertices" 24 (DM.num_vertices model);
  DM.validate model;
  (* every gate's 4 transistors share a block *)
  let by_block = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      Hashtbl.replace by_block b (1 + Option.value ~default:0 (Hashtbl.find_opt by_block b)))
    model.block;
  Hashtbl.iter (fun _ c -> check int "block size" 4 c) by_block

let test_transistor_matches_figure1 () =
  (* single 3-input NAND driving a PO: the ground-most NMOS's projection
     must include drain terms of the two NMOS above it and all three PMOS,
     per Eq. (3) *)
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let c = Netlist.add_input nl "c" in
  let g = Netlist.add_gate nl "g" Gate.Nand [ a; b; c ] in
  Netlist.mark_output nl g;
  Netlist.validate nl;
  let model = Transistor.of_netlist tech nl in
  check int "6 transistors" 6 (DM.num_vertices model);
  (* find the NMOS vertex with the most coefficient terms: the ground-most *)
  let max_terms =
    Array.fold_left (fun acc c -> max acc (Array.length c)) 0 model.a_coeffs
  in
  (* ground NMOS: 2 chain drains above (x2 terms each... combined) + 3 PMOS *)
  check bool "rich projection" true (max_terms >= 5);
  (* total delay along the pulldown chain equals the Elmore sum: positive
     and finite for unit sizes *)
  let x = DM.uniform_sizes model 1.0 in
  Array.iteri
    (fun i _ -> check bool "delay positive" true (DM.delay model x i > 0.0))
    model.a_self

let test_transistor_sinks_and_dag () =
  let nl = Gen.c17 () in
  let model = Transistor.of_netlist tech nl in
  check bool "has sinks" true (Array.exists Fun.id model.is_sink);
  check bool "dag" true (Minflo_graph.Topo.is_dag model.graph);
  (* cross edges exist: more edges than the 6 intra-gate chains provide *)
  check bool "cross edges" true (Digraph.edge_count model.graph > 6)

let test_transistor_needs_mapping () =
  let nl = Gen.parity_tree ~width:4 () in
  match Transistor.of_netlist tech nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of XOR netlist"

let test_transistor_after_mapping () =
  let nl = Transform.to_nand_inv (Gen.parity_tree ~width:4 ()) in
  let model = Transistor.of_netlist tech nl in
  DM.validate model;
  check bool "nonempty" true (DM.num_vertices model > 0)

let prop_transistor_models_validate =
  QCheck.Test.make ~name:"transistor models of random NAND/INV DAGs validate"
    ~count:30 QCheck.small_nat (fun seed ->
      let nl =
        Transform.to_nand_inv
          (Gen.random_dag ~gates:30 ~inputs:5 ~outputs:3 ~seed:(seed + 17) ())
      in
      let model = Transistor.of_netlist tech nl in
      DM.validate model;
      true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "tech"
    [ ( "gate_model",
        [ tc "stacks" `Quick test_gate_model_stacks;
          tc "xor loading" `Quick test_gate_model_xor_loading ] );
      ( "elmore",
        [ tc "chain structure" `Quick test_elmore_chain_structure;
          tc "monotonicity" `Quick test_elmore_delay_monotonicity;
          tc "po load" `Quick test_elmore_po_load;
          tc "multi-pin load" `Quick test_elmore_multi_pin_loading ] );
      ( "delay_model",
        [ tc "area" `Quick test_delay_model_area;
          tc "check sizes" `Quick test_delay_model_check_sizes;
          tc "elimination order" `Quick test_elimination_blocks_triangular ] );
      ( "wires",
        [ tc "structure" `Quick test_with_wires_structure;
          tc "monotonicity" `Quick test_with_wires_monotone;
          QCheck_alcotest.to_alcotest prop_with_wires_validates ] );
      ( "transistor",
        [ tc "topology" `Quick test_topology;
          tc "c17 expansion" `Quick test_transistor_c17;
          tc "figure 1 NAND3" `Quick test_transistor_matches_figure1;
          tc "sinks and dag" `Quick test_transistor_sinks_and_dag;
          tc "rejects macro gates" `Quick test_transistor_needs_mapping;
          tc "after mapping" `Quick test_transistor_after_mapping;
          QCheck_alcotest.to_alcotest prop_transistor_models_validate ] ) ]
