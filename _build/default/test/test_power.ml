(* Tests for switching-activity estimation and power reporting. *)

module Activity = Minflo_power.Activity
module Power = Minflo_power.Power
module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate
module Gen = Minflo_netlist.Generators
module Tech = Minflo_tech.Tech
module Elmore = Minflo_tech.Elmore
module Sweep = Minflo_sizing.Sweep
module Tilos = Minflo_sizing.Tilos
module Minflotransit = Minflo_sizing.Minflotransit
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let tech = Tech.default_130nm

let test_constant_node_never_toggles () =
  (* z = AND(a, NOT a) is constant 0: zero toggles, zero probability *)
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let na = Netlist.add_gate nl "na" Gate.Not [ a ] in
  let z = Netlist.add_gate nl "z" Gate.And [ a; na ] in
  Netlist.mark_output nl z;
  Netlist.validate nl;
  let act = Activity.estimate ~patterns:512 ~seed:7 nl in
  check (Alcotest.float 1e-9) "toggle" 0.0 act.toggle_rate.(z);
  check (Alcotest.float 1e-9) "prob" 0.0 act.one_probability.(z);
  let ex = Activity.exact_small nl in
  check (Alcotest.float 1e-9) "exact toggle" 0.0 ex.toggle_rate.(z)

let test_input_statistics () =
  let nl = Gen.c17 () in
  let act = Activity.estimate ~patterns:4096 ~seed:11 nl in
  List.iter
    (fun v ->
      check bool "input prob near half" true
        (abs_float (act.one_probability.(v) -. 0.5) < 0.05);
      check bool "input toggles near half" true
        (abs_float (act.toggle_rate.(v) -. 0.5) < 0.05))
    (Netlist.inputs nl)

let prop_monte_carlo_matches_exact =
  QCheck.Test.make
    ~name:"Monte-Carlo activity converges to the exhaustive oracle"
    ~count:25 QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:20 ~inputs:5 ~outputs:3 ~seed:(seed + 41) () in
      let mc = Activity.estimate ~patterns:6000 ~seed:(seed + 1) nl in
      let ex = Activity.exact_small nl in
      let ok = ref true in
      for v = 0 to Netlist.node_count nl - 1 do
        if abs_float (mc.one_probability.(v) -. ex.one_probability.(v)) > 0.05 then
          ok := false;
        if abs_float (mc.toggle_rate.(v) -. ex.toggle_rate.(v)) > 0.07 then ok := false
      done;
      !ok)

let test_activity_deterministic () =
  let nl = Gen.c17 () in
  let a = Activity.estimate ~patterns:256 ~seed:3 nl in
  let b = Activity.estimate ~patterns:256 ~seed:3 nl in
  check bool "same" true (a.toggle_rate = b.toggle_rate)

let test_power_monotone_in_sizes () =
  let nl = Gen.c17 () in
  let act = Activity.exact_small nl in
  let base = Power.min_size_baseline tech nl ~activity:act in
  let bigger = Power.dynamic tech nl ~activity:act ~sizes:(Array.make 6 4.0) in
  check bool "positive" true (base.total > 0.0);
  check bool "bigger sizes, more power" true (bigger.total > base.total)

let test_sizing_power_story () =
  (* the [13] motivation: at an equal delay target, the smaller
     MINFLOTRANSIT sizing burns no more switching power than TILOS *)
  let nl = Minflo_netlist.Iscas85.circuit "c432" in
  let model = Elmore.of_netlist tech nl in
  let target = 0.5 *. Sweep.dmin model in
  let tilos = Tilos.size model ~target in
  let mf = Minflotransit.refine_from model ~target ~init:tilos.sizes ~tilos in
  let act = Activity.estimate ~patterns:1024 ~seed:99 nl in
  let p_tilos = Power.dynamic tech nl ~activity:act ~sizes:tilos.sizes in
  let p_mf = Power.dynamic tech nl ~activity:act ~sizes:mf.sizes in
  check bool "minflo never burns more" true (p_mf.total <= p_tilos.total +. 1e-9)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "power"
    [ ( "activity",
        [ tc "constant node" `Quick test_constant_node_never_toggles;
          tc "input statistics" `Quick test_input_statistics;
          tc "deterministic" `Quick test_activity_deterministic;
          QCheck_alcotest.to_alcotest prop_monte_carlo_matches_exact ] );
      ( "power",
        [ tc "monotone in sizes" `Quick test_power_monotone_in_sizes;
          tc "sizing power story" `Slow test_sizing_power_story ] ) ]
