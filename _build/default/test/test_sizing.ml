(* Tests for the sizing engines: TILOS, W-phase minimality, D-phase
   feasibility/optimality structure, and the full MINFLOTRANSIT loop. *)

module Gen = Minflo_netlist.Generators
module Iscas85 = Minflo_netlist.Iscas85
module Transform = Minflo_netlist.Transform
module Tech = Minflo_tech.Tech
module DM = Minflo_tech.Delay_model
module Elmore = Minflo_tech.Elmore
module Transistor = Minflo_tech.Transistor
module Sta = Minflo_timing.Sta
module Tilos = Minflo_sizing.Tilos
module Wphase = Minflo_sizing.Wphase
module Dphase = Minflo_sizing.Dphase
module Sensitivity = Minflo_sizing.Sensitivity
module Minflotransit = Minflo_sizing.Minflotransit
module Sweep = Minflo_sizing.Sweep
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let tech = Tech.default_130nm

let model_of nl = Elmore.of_netlist tech nl

let random_model seed =
  model_of (Gen.random_dag ~gates:35 ~inputs:6 ~outputs:4 ~seed ())

(* ---------- TILOS ---------- *)

let test_tilos_meets_target () =
  let model = model_of (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let r = Tilos.size model ~target:(0.6 *. d0) in
  check bool "met" true r.met;
  check bool "cp within target" true (r.final_cp <= 0.6 *. d0 *. (1.0 +. 1e-9));
  check bool "bumped something" true (r.bumps > 0);
  check bool "sizes within bounds" true (Result.is_ok (DM.check_sizes model r.sizes))

let test_tilos_trivial_target () =
  let model = model_of (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let r = Tilos.size model ~target:(2.0 *. d0) in
  check bool "met with no bumps" true (r.met && r.bumps = 0);
  check (Alcotest.float 1e-9) "area is minimal" (Sweep.min_area model) r.area

let test_tilos_impossible_target () =
  let model = model_of (Gen.c17 ()) in
  let r = Tilos.size model ~target:1.0 in
  check bool "not met" false r.met

let prop_tilos_monotone_area =
  QCheck.Test.make ~name:"TILOS: tighter targets cost no less area" ~count:20
    QCheck.small_nat (fun seed ->
      let model = random_model (seed + 41) in
      let d0 = Sweep.dmin model in
      let loose = Tilos.size model ~target:(0.8 *. d0) in
      let tight = Tilos.size model ~target:(0.6 *. d0) in
      (not (loose.met && tight.met)) || tight.area >= loose.area -. 1e-9)

(* ---------- W-phase ---------- *)

let prop_wphase_meets_budgets =
  QCheck.Test.make ~name:"W-phase sizes satisfy every delay budget" ~count:60
    QCheck.small_nat (fun seed ->
      let model = random_model (seed + 301) in
      let rng = Rng.create (seed + 1) in
      (* budgets: delays of a random feasible sizing, slightly relaxed *)
      let x0 =
        Array.init (DM.num_vertices model) (fun _ -> 1.0 +. Rng.float rng 4.0)
      in
      let budgets = Array.map (fun d -> d *. 1.05) (DM.delays model x0) in
      match Wphase.solve model ~budgets with
      | Error _ -> false
      | Ok w ->
        w.feasible
        && Array.for_all2
             (fun d budget -> d <= budget +. 1e-6 *. budget)
             (DM.delays model w.sizes) budgets)

let prop_wphase_minimal =
  QCheck.Test.make
    ~name:"W-phase least fixpoint is pointwise below any feasible sizing"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 3001) in
      let rng = Rng.create (seed + 2) in
      let x0 =
        Array.init (DM.num_vertices model) (fun _ -> 1.0 +. Rng.float rng 6.0)
      in
      let budgets = DM.delays model x0 in
      match Wphase.solve model ~budgets with
      | Error _ -> true (* some random budget fell below intrinsic: skip *)
      | Ok w ->
        (* x0 is feasible for its own delays, so the LFP is <= x0 *)
        Array.for_all2 (fun xw x -> xw <= x +. 1e-6) w.sizes x0)

let test_wphase_rejects_impossible_budget () =
  let model = model_of (Gen.c17 ()) in
  let budgets = Array.make (DM.num_vertices model) 1e-9 in
  check bool "error" true (Result.is_error (Wphase.solve model ~budgets))

(* ---------- sensitivity ---------- *)

let prop_sensitivity_positive =
  QCheck.Test.make ~name:"sensitivity weights are strictly positive" ~count:40
    QCheck.small_nat (fun seed ->
      let model = random_model (seed + 87) in
      let rng = Rng.create (seed + 3) in
      let x = Array.init (DM.num_vertices model) (fun _ -> 1.0 +. Rng.float rng 3.0) in
      let delays = DM.delays model x in
      let w = Sensitivity.weights model ~sizes:x ~delays in
      Array.for_all (fun c -> c > 0.0) w)

let prop_sensitivity_predicts_area_direction =
  QCheck.Test.make
    ~name:"first-order model: relaxing one budget shrinks the W-phase area"
    ~count:30 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 57) in
      let rng = Rng.create (seed + 4) in
      let x = Array.init (DM.num_vertices model) (fun _ -> 2.0 +. Rng.float rng 3.0) in
      let budgets = DM.delays model x in
      match Wphase.solve model ~budgets with
      | Error _ -> true
      | Ok base ->
        let i = Rng.int rng (DM.num_vertices model) in
        let relaxed = Array.copy budgets in
        relaxed.(i) <- relaxed.(i) *. 1.10;
        (match Wphase.solve model ~budgets:relaxed with
        | Error _ -> true
        | Ok better ->
          (* relaxing a budget can only reduce the minimal area *)
          DM.area model better.sizes <= DM.area model base.sizes +. 1e-6))

(* ---------- D-phase ---------- *)

let dphase_setup seed =
  let model = random_model (seed + 761) in
  let d0 = Sweep.dmin model in
  let target = 0.7 *. d0 in
  let t = Tilos.size model ~target in
  if t.met then Some (model, target, t) else None

let prop_dphase_budgets_feasible =
  QCheck.Test.make
    ~name:"D-phase budgets keep every full path within the deadline"
    ~count:40 QCheck.small_nat (fun seed ->
      match dphase_setup seed with
      | None -> true
      | Some (model, target, t) -> (
        let delays = DM.delays model t.sizes in
        match Dphase.solve model ~sizes:t.sizes ~delays ~deadline:target with
        | Error _ -> false
        | Ok d ->
          (* treating budgets as vertex delays, the longest path must fit *)
          Sta.critical_path_only model ~delays:d.budgets
          <= target *. (1.0 +. 1e-9)))

let prop_dphase_nonnegative_objective =
  QCheck.Test.make
    ~name:"D-phase predicted gain is non-negative (r = 0 is feasible)"
    ~count:40 QCheck.small_nat (fun seed ->
      match dphase_setup (seed + 1000) with
      | None -> true
      | Some (model, target, t) -> (
        let delays = DM.delays model t.sizes in
        match Dphase.solve model ~sizes:t.sizes ~delays ~deadline:target with
        | Error _ -> false
        | Ok d -> d.objective >= -1e-6))

let prop_dphase_solver_agreement =
  QCheck.Test.make ~name:"D-phase via simplex and SSP agree on the objective"
    ~count:15 QCheck.small_nat (fun seed ->
      match dphase_setup (seed + 2000) with
      | None -> true
      | Some (model, target, t) -> (
        let delays = DM.delays model t.sizes in
        let run solver =
          Dphase.solve
            ~options:{ Dphase.default_options with solver }
            model ~sizes:t.sizes ~delays ~deadline:target
        in
        match (run `Simplex, run `Ssp) with
        | Ok a, Ok b -> a.lp_objective = b.lp_objective
        | _ -> false))

(* ---------- MINFLOTRANSIT ---------- *)

let prop_minflo_improves_and_meets =
  QCheck.Test.make
    ~name:"MINFLOTRANSIT never exceeds the target and never beats TILOS on \
           area upward"
    ~count:25 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 5001) in
      let d0 = Sweep.dmin model in
      let r = Minflotransit.optimize model ~target:(0.65 *. d0) in
      if not r.met then r.iterations = 0
      else
        r.cp <= 0.65 *. d0 *. (1.0 +. 1e-6)
        && r.area <= r.tilos.area +. 1e-9
        && Result.is_ok (DM.check_sizes model r.sizes))

let prop_minflo_area_trace_monotone =
  QCheck.Test.make ~name:"accepted iterations decrease area monotonically"
    ~count:20 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 6001) in
      let d0 = Sweep.dmin model in
      let r = Minflotransit.optimize model ~target:(0.7 *. d0) in
      let rec decreasing : Minflotransit.iteration list -> bool = function
        | a :: (b :: _ as rest) -> a.area >= b.area -. 1e-9 && decreasing rest
        | _ -> true
      in
      decreasing r.trace)

let test_minflo_c17_saves_area () =
  let model = model_of (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let r = Minflotransit.optimize model ~target:(0.5 *. d0) in
  check bool "met" true r.met;
  check bool "saves area" true (r.area_saving_pct > 0.0)

let test_minflo_figure6_intuition () =
  (* the paper's qualitative example: A drives both B and C; both paths are
     critical. The optimizer should exploit the shared driver A. *)
  let nl = Minflo_netlist.Netlist.create ~name:"fig6" () in
  let i = Minflo_netlist.Netlist.add_input nl "i" in
  let a = Minflo_netlist.Netlist.add_gate nl "A" Minflo_netlist.Gate.Not [ i ] in
  let b = Minflo_netlist.Netlist.add_gate nl "B" Minflo_netlist.Gate.Not [ a ] in
  let c = Minflo_netlist.Netlist.add_gate nl "C" Minflo_netlist.Gate.Not [ a ] in
  Minflo_netlist.Netlist.mark_output nl b;
  Minflo_netlist.Netlist.mark_output nl c;
  Minflo_netlist.Netlist.validate nl;
  let model = model_of nl in
  let d0 = Sweep.dmin model in
  let r = Minflotransit.optimize model ~target:(0.55 *. d0) in
  check bool "met" true r.met;
  check bool "improves on TILOS" true (r.area < r.tilos.area +. 1e-9)

let test_minflo_transistor_level () =
  (* true transistor sizing end-to-end on c17 *)
  let model = Transistor.of_netlist tech (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let r = Minflotransit.optimize model ~target:(0.6 *. d0) in
  check bool "met" true r.met;
  check bool "area no worse than TILOS" true (r.area <= r.tilos.area +. 1e-9)

let test_minflo_wire_sizing () =
  (* simultaneous gate + wire sizing end-to-end (Section 2.1) *)
  let model = Elmore.with_wires tech (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let r = Minflotransit.optimize model ~target:(0.6 *. d0) in
  check bool "met" true r.met;
  check bool "no worse than TILOS" true (r.area <= r.tilos.area +. 1e-9)

let test_refine_equals_optimize_tail () =
  let model = model_of (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let target = 0.6 *. d0 in
  let t = Tilos.size model ~target in
  let r = Minflotransit.refine model ~target ~init:t.sizes in
  check bool "met" true r.met;
  check bool "no worse" true (r.area <= t.area +. 1e-9)

(* ---------- optimality probe ---------- *)

let test_optimality_probe_converged () =
  let model = model_of (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let target = 0.5 *. d0 in
  let r = Minflotransit.optimize model ~target in
  check bool "met" true r.met;
  let p =
    Minflo_sizing.Optimality.probe ~trials:120 ~seed:5 model ~target ~sizes:r.sizes
  in
  (* Theorem 3: a converged solution admits (essentially) no improving
     perturbation *)
  check bool "no significant improvement" true (p.best_gain_pct < 0.2)

let prop_probe_never_breaks_timing =
  QCheck.Test.make
    ~name:"every improvement found by the probe still meets the deadline"
    ~count:10 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 9001) in
      let d0 = Sweep.dmin model in
      let target = 0.7 *. d0 in
      let t = Tilos.size model ~target in
      if not t.met then true
      else begin
        let p =
          Minflo_sizing.Optimality.probe ~trials:40 ~seed model ~target
            ~sizes:t.sizes
        in
        match p.best_sizes with
        | None -> true
        | Some x ->
          Sta.critical_path_only model ~delays:(DM.delays model x)
          <= target *. (1.0 +. 1e-6)
      end)

(* ---------- discretization ---------- *)

let test_geometric_grid () =
  let g = Minflo_sizing.Discrete.geometric ~ratio:2.0 ~min:1.0 ~max:16.0 in
  check bool "ladder" true (g = [ 1.0; 2.0; 4.0; 8.0; 16.0 ]);
  check (Alcotest.float 1e-9) "snap within" 4.0
    (Minflo_sizing.Discrete.snap_up g 3.1);
  check (Alcotest.float 1e-9) "snap exact" 2.0
    (Minflo_sizing.Discrete.snap_up g 2.0);
  check (Alcotest.float 1e-9) "snap above top" 16.0
    (Minflo_sizing.Discrete.snap_up g 40.0)

let test_discretize_feasible_with_penalty () =
  let model = model_of (Iscas85.circuit "c432") in
  let d0 = Sweep.dmin model in
  let target = 0.5 *. d0 in
  let r = Minflotransit.optimize model ~target in
  check bool "continuous met" true r.met;
  let grid =
    Minflo_sizing.Discrete.geometric ~ratio:1.5 ~min:1.0
      ~max:model.Minflo_tech.Delay_model.max_size
  in
  let d = Minflo_sizing.Discrete.discretize model ~target ~continuous:r.sizes grid in
  check bool "discrete met" true d.met;
  check bool "snapped to grid" true
    (Array.for_all (fun x -> List.exists (fun g -> abs_float (g -. x) < 1e-9) grid) d.sizes);
  check bool "penalty non-negative" true (d.area_penalty_pct >= -1e-9)

let prop_finer_grid_smaller_penalty =
  QCheck.Test.make
    ~name:"refining the drive ladder does not increase the snap penalty"
    ~count:10 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 8001) in
      let d0 = Sweep.dmin model in
      let target = 0.65 *. d0 in
      let r = Minflotransit.optimize model ~target in
      if not r.met then true
      else begin
        let penalty ratio =
          let grid =
            Minflo_sizing.Discrete.geometric ~ratio ~min:1.0
              ~max:model.Minflo_tech.Delay_model.max_size
          in
          let d =
            Minflo_sizing.Discrete.discretize model ~target ~continuous:r.sizes grid
          in
          if d.met then Some d.area_penalty_pct else None
        in
        (* greedy repair adds noise, so allow a small tolerance: the trend,
           not strict monotonicity, is the property *)
        match (penalty 2.0, penalty 1.2) with
        | Some coarse, Some fine -> fine <= coarse +. 0.5
        | _ -> true
      end)

(* ---------- Lagrangian baseline ---------- *)

let test_lagrangian_feasible_and_no_worse () =
  let model = model_of (Gen.c17 ()) in
  let d0 = Sweep.dmin model in
  let target = 0.5 *. d0 in
  let tilos = Tilos.size model ~target in
  let lr = Minflo_sizing.Lagrangian.size model ~target in
  check bool "met" true lr.met;
  check bool "cp within target" true (lr.cp <= target *. (1.0 +. 1e-9));
  check bool "never worse than the TILOS seed" true (lr.area <= tilos.area +. 1e-9);
  check bool "sizes in bounds" true (Result.is_ok (DM.check_sizes model lr.sizes))

let test_lagrangian_beats_tilos_on_c432 () =
  let model = model_of (Iscas85.circuit "c432") in
  let target = 0.4 *. Sweep.dmin model in
  let tilos = Tilos.size model ~target in
  let lr =
    Minflo_sizing.Lagrangian.size
      ~options:{ Minflo_sizing.Lagrangian.default_options with iterations = 20 }
      model ~target
  in
  check bool "lr met" true lr.met;
  check bool "strictly better than TILOS" true (lr.area < tilos.area)

let prop_lagrangian_always_feasible =
  QCheck.Test.make ~name:"Lagrangian results always respect the deadline"
    ~count:10 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 7001) in
      let d0 = Sweep.dmin model in
      let target = 0.6 *. d0 in
      let lr =
        Minflo_sizing.Lagrangian.size
          ~options:{ Minflo_sizing.Lagrangian.default_options with iterations = 5 }
          model ~target
      in
      (not lr.met) || lr.cp <= target *. (1.0 +. 1e-6))

(* ---------- sweep ---------- *)

let test_sweep_curve_monotone () =
  let model = model_of (Gen.ripple_carry_adder ~bits:4 ()) in
  let points = Sweep.curve model ~factors:[ 0.5; 0.7; 0.9 ] in
  let ratios =
    List.filter_map
      (fun (p : Sweep.point) ->
        if p.tilos_met then Some p.minflo_area_ratio else None)
      points
  in
  check bool "all met" true (List.length ratios = 3);
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  check bool "looser target, smaller area" true (non_increasing ratios);
  check bool "minflo <= tilos pointwise" true
    (List.for_all
       (fun (p : Sweep.point) ->
         (not p.tilos_met) || p.minflo_area_ratio <= p.tilos_area_ratio +. 1e-9)
       points)

let test_iscas_row_shape () =
  (* one real Table 1 row end-to-end (small circuit to stay fast) *)
  let model = model_of (Iscas85.circuit "c432") in
  let p = Sweep.at_factor model ~factor:0.4 in
  check bool "tilos met" true p.tilos_met;
  check bool "minflo met" true p.minflo_met;
  check bool "positive saving" true (p.saving_pct > 0.0);
  check bool "few tens of iterations" true (p.iterations <= 100)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sizing"
    [ ( "tilos",
        [ tc "meets target" `Quick test_tilos_meets_target;
          tc "trivial target" `Quick test_tilos_trivial_target;
          tc "impossible target" `Quick test_tilos_impossible_target;
          QCheck_alcotest.to_alcotest prop_tilos_monotone_area ] );
      ( "wphase",
        [ QCheck_alcotest.to_alcotest prop_wphase_meets_budgets;
          QCheck_alcotest.to_alcotest prop_wphase_minimal;
          tc "impossible budget" `Quick test_wphase_rejects_impossible_budget ] );
      ( "sensitivity",
        [ QCheck_alcotest.to_alcotest prop_sensitivity_positive;
          QCheck_alcotest.to_alcotest prop_sensitivity_predicts_area_direction ] );
      ( "dphase",
        [ QCheck_alcotest.to_alcotest prop_dphase_budgets_feasible;
          QCheck_alcotest.to_alcotest prop_dphase_nonnegative_objective;
          QCheck_alcotest.to_alcotest prop_dphase_solver_agreement ] );
      ( "minflotransit",
        [ QCheck_alcotest.to_alcotest prop_minflo_improves_and_meets;
          QCheck_alcotest.to_alcotest prop_minflo_area_trace_monotone;
          tc "c17 saves area" `Quick test_minflo_c17_saves_area;
          tc "figure 6 intuition" `Quick test_minflo_figure6_intuition;
          tc "transistor level" `Slow test_minflo_transistor_level;
          tc "wire sizing" `Quick test_minflo_wire_sizing;
          tc "refine" `Quick test_refine_equals_optimize_tail ] );
      ( "optimality",
        [ tc "converged solution stable" `Quick test_optimality_probe_converged;
          QCheck_alcotest.to_alcotest prop_probe_never_breaks_timing ] );
      ( "discrete",
        [ tc "geometric grid" `Quick test_geometric_grid;
          tc "feasible with penalty" `Slow test_discretize_feasible_with_penalty;
          QCheck_alcotest.to_alcotest prop_finer_grid_smaller_penalty ] );
      ( "lagrangian",
        [ tc "feasible, no worse" `Quick test_lagrangian_feasible_and_no_worse;
          tc "beats TILOS on c432" `Slow test_lagrangian_beats_tilos_on_c432;
          QCheck_alcotest.to_alcotest prop_lagrangian_always_feasible ] );
      ( "sweep",
        [ tc "curve monotone" `Slow test_sweep_curve_monotone;
          tc "table row shape" `Slow test_iscas_row_shape ] ) ]
