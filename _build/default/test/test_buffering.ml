(* Tests for van Ginneken buffer insertion. *)

module VG = Minflo_buffering.Van_ginneken
module Tech = Minflo_tech.Tech
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let tech = Tech.default_130nm
let buf = VG.buffer_of_tech tech

let sink ?(cap = 3.0) ?(rat = 1_000_000.0) name = VG.Sink { name; cap; rat }

let test_single_sink_elmore () =
  (* RAT at the driver of wire(r,c) -> sink: rat - r(c/2 + cap) - R*(c+cap) *)
  let w = { VG.r = 100.0; c = 10.0 } in
  let t = VG.Wire (w, sink ~cap:3.0 ~rat:5000.0 "s") in
  let got = VG.unbuffered_rat ~driver_r:50.0 t in
  let expected = 5000.0 -. (100.0 *. ((10.0 /. 2.0) +. 3.0)) -. (50.0 *. 13.0) in
  check (Alcotest.float 1e-6) "elmore backprop" expected got

let test_branch_takes_min () =
  let t =
    VG.Branch
      [ sink ~rat:100.0 ~cap:1.0 "a"; sink ~rat:50.0 ~cap:1.0 "b" ]
  in
  let got = VG.unbuffered_rat ~driver_r:10.0 t in
  (* min rat 50, total cap 2 *)
  check (Alcotest.float 1e-6) "min rule" (50.0 -. 20.0) got

let long_line segments seg_r seg_c =
  let rec build k =
    if k = 0 then sink ~cap:3.0 ~rat:0.0 "s"
    else VG.Wire ({ VG.r = seg_r; c = seg_c }, build (k - 1))
  in
  build segments

let test_buffers_help_long_lines () =
  let t = long_line 20 500.0 8.0 in
  let plain = VG.unbuffered_rat ~driver_r:2000.0 t in
  match VG.best_rat ~driver_r:2000.0 (VG.solve ~buffers:[ buf ] t) with
  | None -> Alcotest.fail "no candidates"
  | Some (best, cand) ->
    check bool "buffered strictly better" true (best > plain);
    check bool "uses at least one buffer" true (cand.placements <> [])

let test_short_line_needs_no_buffer () =
  let t = VG.Wire ({ VG.r = 10.0; c = 1.0 }, sink "s") in
  match VG.best_rat ~driver_r:100.0 (VG.solve ~buffers:[ buf ] t) with
  | None -> Alcotest.fail "no candidates"
  | Some (_, cand) -> check bool "no buffer placed" true (cand.placements = [])

let test_frontier_is_pareto () =
  let t = long_line 10 400.0 6.0 in
  let frontier = VG.solve ~buffers:[ buf ] t in
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      a.VG.cap < b.VG.cap && a.VG.rat < b.VG.rat && ordered rest
    | _ -> true
  in
  check bool "cap and rat strictly increase together" true (ordered frontier)

let test_decoupling_branch () =
  (* a critical sink plus a heavy non-critical branch: buffering the heavy
     branch shields the critical one *)
  let heavy =
    VG.Wire ({ VG.r = 200.0; c = 50.0 }, sink ~cap:40.0 ~rat:1_000_000.0 "slow")
  in
  let critical = sink ~cap:2.0 ~rat:10_000.0 "fast" in
  let t = VG.Branch [ critical; heavy ] in
  let plain = VG.unbuffered_rat ~driver_r:800.0 t in
  match VG.best_rat ~driver_r:800.0 (VG.solve ~buffers:[ buf ] t) with
  | None -> Alcotest.fail "no candidates"
  | Some (best, cand) ->
    check bool "decoupling helps" true (best > plain);
    check bool "buffer sits on the heavy branch" true
      (List.exists
         (fun p -> String.length p >= 3 && String.sub p 0 3 = "0/1")
         cand.placements)

let prop_more_wire_never_helps =
  QCheck.Test.make ~name:"extending the wire never improves the driver RAT"
    ~count:100 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 5) in
      let segs = 1 + Rng.int rng 8 in
      let r = 50.0 +. Rng.float rng 500.0 and c = 1.0 +. Rng.float rng 10.0 in
      let shorter = long_line segs r c in
      let longer = long_line (segs + 1) r c in
      let dr = 100.0 +. Rng.float rng 1000.0 in
      let v t = match VG.best_rat ~driver_r:dr (VG.solve ~buffers:[ buf ] t) with
        | Some (v, _) -> v
        | None -> neg_infinity
      in
      v longer <= v shorter +. 1e-6)

let prop_buffer_option_never_hurts =
  QCheck.Test.make ~name:"offering a buffer library never lowers the best RAT"
    ~count:100 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 31) in
      (* random tree of depth <= 4 *)
      let rec gen depth =
        if depth = 0 || Rng.int rng 3 = 0 then
          sink ~cap:(1.0 +. Rng.float rng 5.0) ~rat:(Rng.float rng 10_000.0)
            (Printf.sprintf "s%d" (Rng.int rng 1000))
        else if Rng.bool rng then
          VG.Wire
            ({ VG.r = 20.0 +. Rng.float rng 400.0; c = 1.0 +. Rng.float rng 10.0 },
             gen (depth - 1))
        else VG.Branch [ gen (depth - 1); gen (depth - 1) ]
      in
      let t = gen 4 in
      let dr = 100.0 +. Rng.float rng 1000.0 in
      let without = VG.unbuffered_rat ~driver_r:dr t in
      match VG.best_rat ~driver_r:dr (VG.solve ~buffers:[ buf ] t) with
      | Some (v, _) -> v >= without -. 1e-6
      | None -> false)

let prop_optimal_buffer_count_grows =
  QCheck.Test.make ~name:"longer lines want more buffers" ~count:30
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 77) in
      let r = 300.0 +. Rng.float rng 300.0 and c = 6.0 +. Rng.float rng 6.0 in
      let count segs =
        match VG.best_rat ~driver_r:1500.0 (VG.solve ~buffers:[ buf ] (long_line segs r c)) with
        | Some (_, cand) -> List.length cand.placements
        | None -> 0
      in
      count 24 >= count 6)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "buffering"
    [ ( "van_ginneken",
        [ tc "elmore backprop" `Quick test_single_sink_elmore;
          tc "branch min rule" `Quick test_branch_takes_min;
          tc "long lines buffered" `Quick test_buffers_help_long_lines;
          tc "short lines bare" `Quick test_short_line_needs_no_buffer;
          tc "pareto frontier" `Quick test_frontier_is_pareto;
          tc "decoupling" `Quick test_decoupling_branch;
          QCheck_alcotest.to_alcotest prop_more_wire_never_helps;
          QCheck_alcotest.to_alcotest prop_buffer_option_never_hurts;
          QCheck_alcotest.to_alcotest prop_optimal_buffer_count_grows ] ) ]
