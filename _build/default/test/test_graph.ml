(* Unit and property tests for the graph substrate. *)

module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Traverse = Minflo_graph.Traverse
module Dot = Minflo_graph.Dot
module Rng = Minflo_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  let c = Digraph.add_node g in
  let d = Digraph.add_node g in
  ignore (Digraph.add_edge g a b);
  ignore (Digraph.add_edge g a c);
  ignore (Digraph.add_edge g b d);
  ignore (Digraph.add_edge g c d);
  g

let test_basic_structure () =
  let g = diamond () in
  check int "nodes" 4 (Digraph.node_count g);
  check int "edges" 4 (Digraph.edge_count g);
  check int "out_degree 0" 2 (Digraph.out_degree g 0);
  check int "in_degree 3" 2 (Digraph.in_degree g 3);
  check (Alcotest.list int) "succ 0" [ 1; 2 ] (Digraph.succ g 0);
  check (Alcotest.list int) "pred 3" [ 1; 2 ] (Digraph.pred g 3);
  check bool "find_edge" true (Digraph.find_edge g 0 1 <> None);
  check bool "find_edge none" true (Digraph.find_edge g 1 0 = None)

let test_edge_endpoints () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  let e = Digraph.add_edge g a b in
  check int "src" a (Digraph.src g e);
  check int "dst" b (Digraph.dst g e)

let test_add_nodes_bulk () =
  let g = Digraph.create () in
  let first = Digraph.add_nodes g 5 in
  check int "first id" 0 first;
  check int "count" 5 (Digraph.node_count g)

let test_topo_diamond () =
  let g = diamond () in
  let order = Topo.sort g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i u -> pos.(u) <- i) order;
  Digraph.iter_edges g (fun e ->
      check bool "topo respects edges" true
        (pos.(Digraph.src g e) < pos.(Digraph.dst g e)))

let test_topo_cycle () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  ignore (Digraph.add_edge g a b);
  ignore (Digraph.add_edge g b a);
  check bool "not a dag" false (Topo.is_dag g);
  (match Topo.sort_opt g with
  | None -> ()
  | Some _ -> Alcotest.fail "expected no topo order");
  match Topo.sort g with
  | exception Topo.Cycle nodes -> check bool "cycle nonempty" true (nodes <> [])
  | _ -> Alcotest.fail "expected Cycle exception"

let test_levels_depth () =
  let g = diamond () in
  let levels = Topo.levels g in
  check int "level src" 0 levels.(0);
  check int "level mid" 1 levels.(1);
  check int "level sink" 2 levels.(3);
  check int "depth" 2 (Topo.depth g)

let test_longest_path_weighted () =
  let g = diamond () in
  let weight = function 0 -> 1.0 | 1 -> 5.0 | 2 -> 2.0 | _ -> 1.0 in
  let dist = Topo.longest_path_to g ~weight in
  check (Alcotest.float 1e-9) "src" 1.0 dist.(0);
  check (Alcotest.float 1e-9) "via heavy" 6.0 dist.(1);
  check (Alcotest.float 1e-9) "sink" 7.0 dist.(3)

let test_dfs_post () =
  let g = diamond () in
  let post = Traverse.dfs_post g ~roots:[ 0 ] in
  check int "visits all" 4 (List.length post);
  (* root must come last in postorder *)
  check int "root last" 0 (List.nth post 3)

let test_reachable () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  let c = Digraph.add_node g in
  ignore (Digraph.add_edge g a b);
  ignore c;
  let r = Traverse.reachable g ~roots:[ a ] in
  check bool "a" true (Minflo_util.Bitset.mem r a);
  check bool "b" true (Minflo_util.Bitset.mem r b);
  check bool "c not" false (Minflo_util.Bitset.mem r c);
  let rr = Traverse.reachable_rev g ~roots:[ b ] in
  check bool "rev a" true (Minflo_util.Bitset.mem rr a)

let test_components () =
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 4);
  ignore (Digraph.add_edge g 0 1);
  ignore (Digraph.add_edge g 2 3);
  check int "two components" 2 (Traverse.weakly_connected_components g)

let test_dot_output () =
  let g = diamond () in
  let s = Dot.to_dot ~name:"test" ~node_label:string_of_int g in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
    loop 0
  in
  check bool "digraph" true (contains s "digraph test");
  check bool "edge" true (contains s "n0 -> n1")

(* random DAG property: topo order exists and levels are consistent *)
let random_dag seed n =
  let rng = Rng.create seed in
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g n);
  for v = 1 to n - 1 do
    let k = 1 + Rng.int rng 3 in
    for _ = 1 to k do
      let u = Rng.int rng v in
      ignore (Digraph.add_edge g u v)
    done
  done;
  g

let prop_random_dag_topo =
  QCheck.Test.make ~name:"random DAGs always topo-sort" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (seed, size) ->
      let n = 2 + (size mod 40) in
      let g = random_dag seed n in
      match Topo.sort_opt g with
      | None -> false
      | Some order ->
        let pos = Array.make n 0 in
        Array.iteri (fun i u -> pos.(u) <- i) order;
        let ok = ref true in
        Digraph.iter_edges g (fun e ->
            if pos.(Digraph.src g e) >= pos.(Digraph.dst g e) then ok := false);
        !ok)

let prop_levels_monotone =
  QCheck.Test.make ~name:"ASAP levels increase along every edge" ~count:50
    QCheck.small_nat (fun seed ->
      let g = random_dag seed 30 in
      let levels = Topo.levels g in
      let ok = ref true in
      Digraph.iter_edges g (fun e ->
          if levels.(Digraph.dst g e) <= levels.(Digraph.src g e) then ok := false);
      !ok)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "graph"
    [ ( "digraph",
        [ tc "structure" `Quick test_basic_structure;
          tc "endpoints" `Quick test_edge_endpoints;
          tc "bulk nodes" `Quick test_add_nodes_bulk ] );
      ( "topo",
        [ tc "diamond" `Quick test_topo_diamond;
          tc "cycle" `Quick test_topo_cycle;
          tc "levels/depth" `Quick test_levels_depth;
          tc "longest path" `Quick test_longest_path_weighted;
          QCheck_alcotest.to_alcotest prop_random_dag_topo;
          QCheck_alcotest.to_alcotest prop_levels_monotone ] );
      ( "traverse",
        [ tc "dfs_post" `Quick test_dfs_post;
          tc "reachable" `Quick test_reachable;
          tc "components" `Quick test_components ] );
      ("dot", [ tc "output" `Quick test_dot_output ]) ]
