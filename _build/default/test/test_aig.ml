(* Tests for the AIG package: hashing rules, netlist round trips (proved by
   BOTH the BDD and SAT oracles), and the structural optimizer. *)

module Aig = Minflo_aig.Aig
module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate
module Gen = Minflo_netlist.Generators
module BddCheck = Minflo_bdd.Check
module Cnf = Minflo_sat.Cnf
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_local_rules () =
  let t = Aig.create () in
  let a = Aig.new_input t in
  let b = Aig.new_input t in
  check int "x & x = x" a (Aig.land_ t a a);
  check int "x & !x = 0" Aig.const_false (Aig.land_ t a (Aig.lnot a));
  check int "x & 1 = x" a (Aig.land_ t a Aig.const_true);
  check int "x & 0 = 0" Aig.const_false (Aig.land_ t a Aig.const_false);
  check int "commutative hashing" (Aig.land_ t a b) (Aig.land_ t b a);
  check int "double negation" a (Aig.lnot (Aig.lnot a));
  check int "one and-node" 1 (Aig.num_ands t)

let test_sharing () =
  let t = Aig.create () in
  let a = Aig.new_input t in
  let b = Aig.new_input t in
  let c = Aig.new_input t in
  (* (a&b)|c and (a&b)^c share the a&b node *)
  let x = Aig.lor_ t (Aig.land_ t a b) c in
  let y = Aig.lxor_ t (Aig.land_ t a b) c in
  check bool "shared subterm" true (Aig.cone_size t [ x; y ] < Aig.cone_size t [ x ] + Aig.cone_size t [ y ])

let test_eval () =
  let t = Aig.create () in
  let a = Aig.new_input t in
  let b = Aig.new_input t in
  let f = Aig.lxor_ t a (Aig.lnot b) in
  let cases = [ (false, false, true); (true, false, false); (false, true, false); (true, true, true) ] in
  List.iter
    (fun (va, vb, expect) ->
      check bool "xnor truth" expect (Aig.eval t ~inputs:[| va; vb |] f))
    cases;
  ignore (a, b)

let both_oracles_equivalent a b =
  BddCheck.equivalent a b = BddCheck.Equivalent
  && Cnf.equivalent a b = Cnf.Equivalent

let test_roundtrip_generators () =
  List.iter
    (fun nl ->
      let nl2 = Aig.strash_netlist nl in
      check bool "equivalent (BDD and SAT)" true (both_oracles_equivalent nl nl2))
    [ Gen.c17 ();
      Gen.ripple_carry_adder ~bits:4 ();
      Gen.kogge_stone_adder ~bits:4 ();
      Gen.comparator ~width:4 ();
      Gen.alu ~width:3 () ]

let test_strash_shrinks_duplicates () =
  (* build a netlist that computes the same cone twice *)
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let c = Netlist.add_input nl "c" in
  let g1 = Netlist.add_gate nl "g1" Gate.And [ a; b ] in
  let g2 = Netlist.add_gate nl "g2" Gate.And [ a; b ] in
  let o1 = Netlist.add_gate nl "o1" Gate.Or [ g1; c ] in
  let o2 = Netlist.add_gate nl "o2" Gate.Or [ g2; c ] in
  Netlist.mark_output nl o1;
  Netlist.mark_output nl o2;
  Netlist.validate nl;
  (* hashing recognizes that both cones are the same function: the whole
     4-gate circuit needs only 2 AND nodes, and both outputs share one
     literal *)
  let t, lit = Aig.of_netlist nl in
  check int "two AND nodes" 2 (Aig.cone_size t [ lit.(o1); lit.(o2) ]);
  check int "outputs merged" lit.(o1) lit.(o2);
  let nl2 = Aig.strash_netlist nl in
  check bool "still equivalent" true (both_oracles_equivalent nl nl2)

let test_constant_output () =
  (* an output that is constant false exercises the constant realization *)
  let nl = Netlist.create () in
  let a = Netlist.add_input nl "a" in
  let na = Netlist.add_gate nl "na" Gate.Not [ a ] in
  let z = Netlist.add_gate nl "z" Gate.And [ a; na ] in
  Netlist.mark_output nl z;
  Netlist.validate nl;
  let nl2 = Aig.strash_netlist nl in
  check bool "equivalent" true (both_oracles_equivalent nl nl2)

let prop_roundtrip_random =
  QCheck.Test.make
    ~name:"AIG round trips random netlists (BDD oracle)" ~count:60
    QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:30 ~inputs:6 ~outputs:4 ~seed:(seed + 21) () in
      let nl2 = Aig.strash_netlist nl in
      BddCheck.equivalent nl nl2 = BddCheck.Equivalent)

let prop_strash_never_grows_much =
  QCheck.Test.make
    ~name:"strash keeps netlists within the AND/INV decomposition bound"
    ~count:40 QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:40 ~inputs:6 ~outputs:4 ~seed:(seed + 91) () in
      let nl2 = Aig.strash_netlist nl in
      (* every k-ary gate costs at most ~4(k-1) AND/INV nodes (xor chains);
         a gross blowup would signal a hashing bug *)
      Netlist.gate_count nl2 <= 8 * Netlist.gate_count nl + 8)

let prop_eval_matches_netlist =
  QCheck.Test.make ~name:"AIG evaluation matches netlist simulation" ~count:60
    QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:25 ~inputs:5 ~outputs:3 ~seed:(seed + 33) () in
      let t, lit = Aig.of_netlist nl in
      let rng = Rng.create (seed + 3) in
      let ok = ref true in
      for _ = 1 to 10 do
        let bits = Array.init (Netlist.input_count nl) (fun _ -> Rng.bool rng) in
        let values = Netlist.simulate nl bits in
        List.iter
          (fun o -> if Aig.eval t ~inputs:bits lit.(o) <> values.(o) then ok := false)
          (Netlist.outputs nl)
      done;
      !ok)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "aig"
    [ ( "core",
        [ tc "local rules" `Quick test_local_rules;
          tc "sharing" `Quick test_sharing;
          tc "eval" `Quick test_eval ] );
      ( "netlist",
        [ tc "roundtrip generators" `Quick test_roundtrip_generators;
          tc "strash shrinks duplicates" `Quick test_strash_shrinks_duplicates;
          tc "constant output" `Quick test_constant_output;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_strash_never_grows_much;
          QCheck_alcotest.to_alcotest prop_eval_matches_netlist ] ) ]
