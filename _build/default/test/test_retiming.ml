(* Tests for the retiming module — the Leiserson-Saxe machinery that the
   paper's D-phase borrows (FSDU displacement = register relabeling). *)

module R = Minflo_retiming.Retiming
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* two-node loop: A(5) -0-> B(5) -2-> A; one register must move *)
let two_node_loop () =
  let t = R.create ~name:"loop" () in
  let a = R.add_node t ~delay:5.0 "A" in
  let b = R.add_node t ~delay:5.0 "B" in
  R.add_edge t a b ~registers:0;
  R.add_edge t b a ~registers:2;
  t

let test_loop_period () =
  let t = two_node_loop () in
  R.validate t;
  check (Alcotest.float 1e-9) "initial period" 10.0 (R.clock_period t);
  check (Alcotest.float 1e-9) "min period" 5.0 (R.min_period t);
  match R.retime t ~period:5.0 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let t' = R.apply t r in
    check (Alcotest.float 1e-9) "retimed period" 5.0 (R.clock_period t');
    check int "registers preserved on the cycle" 2 (R.total_registers t')

let test_loop_infeasible_below () =
  let t = two_node_loop () in
  check bool "4.9 infeasible" false (R.feasible t ~period:4.9);
  check bool "5.0 feasible" true (R.feasible t ~period:5.0);
  match R.retime t ~period:4.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected infeasibility"

(* the classic pipeline: a chain can always be pipelined down to its
   slowest stage if enough registers sit at the end *)
let test_pipeline_chain () =
  let t = R.create () in
  let n0 = R.add_node t ~delay:2.0 "s0" in
  let n1 = R.add_node t ~delay:4.0 "s1" in
  let n2 = R.add_node t ~delay:3.0 "s2" in
  let n3 = R.add_node t ~delay:1.0 "s3" in
  R.add_edge t n0 n1 ~registers:0;
  R.add_edge t n1 n2 ~registers:0;
  R.add_edge t n2 n3 ~registers:3;
  check (Alcotest.float 1e-9) "combinational now" 9.0 (R.clock_period t);
  let p = R.min_period t in
  check (Alcotest.float 1e-9) "pipelined to the slowest stage" 4.0 p;
  match R.retime t ~period:p with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let t' = R.apply t r in
    check bool "achieves it" true (R.clock_period t' <= p +. 1e-9)

let test_illegal_cycle_rejected () =
  let t = R.create () in
  let a = R.add_node t "A" in
  let b = R.add_node t "B" in
  R.add_edge t a b ~registers:0;
  R.add_edge t b a ~registers:0;
  match R.validate t with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected rejection of a register-free cycle"

let test_min_registers_beats_plain_retime () =
  (* a fork-join where plain feasibility retiming duplicates registers on
     both branches while the flow-based one shares them *)
  let t = R.create () in
  let src = R.add_node t ~delay:6.0 "src" in
  let a = R.add_node t ~delay:6.0 "a" in
  let b = R.add_node t ~delay:6.0 "b" in
  let join = R.add_node t ~delay:6.0 "join" in
  R.add_edge t src a ~registers:0;
  R.add_edge t src b ~registers:0;
  R.add_edge t a join ~registers:0;
  R.add_edge t b join ~registers:0;
  R.add_edge t join src ~registers:4;
  let period = 6.0 in
  match (R.retime t ~period, R.min_registers t ~period) with
  | Ok r1, Ok r2 ->
    let t1 = R.apply t r1 and t2 = R.apply t r2 in
    check bool "both meet the period" true
      (R.clock_period t1 <= period +. 1e-9 && R.clock_period t2 <= period +. 1e-9);
    check bool "flow-based uses no more registers" true
      (R.total_registers t2 <= R.total_registers t1)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* random legal synchronous graphs: layered DAG edges (some with 0 regs)
   plus feedback edges that always carry registers *)
let random_circuit seed =
  let rng = Rng.create seed in
  let t = R.create () in
  let n = 4 + Rng.int rng 10 in
  let nodes =
    Array.init n (fun i ->
        R.add_node t ~delay:(1.0 +. Rng.float rng 8.0) (Printf.sprintf "v%d" i))
  in
  for v = 1 to n - 1 do
    (* forward edges keep the zero-register subgraph acyclic *)
    let u = Rng.int rng v in
    R.add_edge t nodes.(u) nodes.(v) ~registers:(Rng.int rng 2);
    if Rng.int rng 3 = 0 then begin
      let u2 = Rng.int rng v in
      R.add_edge t nodes.(u2) nodes.(v) ~registers:(Rng.int rng 2)
    end
  done;
  (* feedback with registers *)
  for _ = 1 to 1 + Rng.int rng 3 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u > v then R.add_edge t nodes.(u) nodes.(v) ~registers:(1 + Rng.int rng 2)
  done;
  t

let prop_min_period_achievable =
  QCheck.Test.make ~name:"retiming to min_period always achieves it" ~count:80
    QCheck.small_nat (fun seed ->
      let t = random_circuit (seed + 17) in
      R.validate t;
      let p = R.min_period t in
      match R.retime t ~period:p with
      | Error _ -> false
      | Ok r ->
        let t' = R.apply t r in
        R.clock_period t' <= p +. 1e-6)

let prop_min_period_is_minimal =
  QCheck.Test.make ~name:"nothing below min_period is feasible" ~count:80
    QCheck.small_nat (fun seed ->
      let t = random_circuit (seed + 1017) in
      let p = R.min_period t in
      not (R.feasible t ~period:(p *. 0.95 -. 1e-6)))

let prop_min_registers_feasible_and_cheaper =
  QCheck.Test.make
    ~name:"min-register retiming meets the period with <= registers" ~count:80
    QCheck.small_nat (fun seed ->
      let t = random_circuit (seed + 2017) in
      let p = R.min_period t in
      match (R.retime t ~period:p, R.min_registers t ~period:p) with
      | Ok r1, Ok r2 ->
        let t1 = R.apply t r1 and t2 = R.apply t r2 in
        R.clock_period t2 <= p +. 1e-6
        && R.total_registers t2 <= R.total_registers t1
      | _ -> false)

let prop_retiming_invertible =
  QCheck.Test.make
    ~name:"applying a retiming and then its negation restores the circuit"
    ~count:50 QCheck.small_nat (fun seed ->
      let t = random_circuit (seed + 3017) in
      let p = R.min_period t in
      match R.retime t ~period:p with
      | Error _ -> false
      | Ok r ->
        let t' = R.apply t r in
        let back = R.apply t' (Array.map (fun x -> -x) r) in
        R.total_registers back = R.total_registers t
        && abs_float (R.clock_period back -. R.clock_period t) < 1e-9)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "retiming"
    [ ( "examples",
        [ tc "two-node loop" `Quick test_loop_period;
          tc "infeasible below" `Quick test_loop_infeasible_below;
          tc "pipeline chain" `Quick test_pipeline_chain;
          tc "illegal cycle" `Quick test_illegal_cycle_rejected;
          tc "min registers" `Quick test_min_registers_beats_plain_retime ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_min_period_achievable;
          QCheck_alcotest.to_alcotest prop_min_period_is_minimal;
          QCheck_alcotest.to_alcotest prop_min_registers_feasible_and_cheaper;
          QCheck_alcotest.to_alcotest prop_retiming_invertible ] ) ]
