(* Tests for the Liberty-subset cell library reader/writer. *)

module Liberty = Minflo_tech.Liberty
module Tech = Minflo_tech.Tech
module Gate = Minflo_netlist.Gate
module Gate_model = Minflo_tech.Gate_model
module Elmore = Minflo_tech.Elmore
module DM = Minflo_tech.Delay_model
module Gen = Minflo_netlist.Generators
module Sweep = Minflo_sizing.Sweep
module Minflotransit = Minflo_sizing.Minflotransit

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let tech = Tech.default_130nm

let sample_lib =
  {|/* demo library */
library (demo) {
  time_unit : "1ps";
  cell (NAND2_X1) {
    area : 4;
    function : "NAND";
    pins : 2;
    pin_cap : 3.6;
    drive_res : 17000;
    intrinsic : 36000;
  }
  cell (INV_X2) {
    area : 2;
    function : "NOT";
    pin (A) {
      direction : input;
      capacitance : 1.8;
    }
    drive_res : 4250;
    intrinsic : 9000;
  }
  cell (DFF_X1) {
    area : 10;
    function : "dff";  /* unsupported: skipped, not an error */
  }
  operating_conditions (typ) {
    process : 1;  /* unknown group: skipped */
  }
}
|}

let test_parse_sample () =
  let lib = Liberty.parse_string sample_lib in
  check Alcotest.string "name" "demo" lib.lname;
  check int "two supported cells" 2 (List.length lib.cells);
  match Liberty.find lib Gate.Nand ~arity:2 with
  | None -> Alcotest.fail "NAND2 missing"
  | Some c ->
    check (Alcotest.float 1e-9) "pin cap" 3.6 c.pin_cap;
    check (Alcotest.float 1e-9) "drive" 17000.0 c.drive_res;
    check (Alcotest.float 1e-9) "area" 4.0 c.area

let test_pin_group_capacitance () =
  let lib = Liberty.parse_string sample_lib in
  match Liberty.find lib Gate.Not ~arity:1 with
  | None -> Alcotest.fail "INV missing"
  | Some c -> check (Alcotest.float 1e-9) "cap from pin group" 1.8 c.pin_cap

let test_roundtrip_of_tech () =
  let lib = Liberty.of_tech tech in
  let lib2 = Liberty.parse_string (Liberty.to_string lib) in
  check int "cell count" (List.length lib.cells) (List.length lib2.cells);
  List.iter2
    (fun (a : Liberty.cell) (b : Liberty.cell) ->
      check Alcotest.string "name" a.cname b.cname;
      check bool "kind" true (a.kind = b.kind);
      check int "arity" a.arity b.arity;
      check (Alcotest.float 1e-6) "pin cap" a.pin_cap b.pin_cap;
      check (Alcotest.float 1e-6) "drive" a.drive_res b.drive_res)
    lib.cells lib2.cells

let test_gate_model_matches_analytic () =
  (* a library materialized from the tech must reproduce the analytic
     models for the cells it contains *)
  let lib = Liberty.of_tech tech in
  List.iter
    (fun (kind, arity) ->
      let a = Gate_model.of_gate tech kind ~arity in
      let b = Liberty.gate_model tech lib kind ~arity in
      check (Alcotest.float 1e-6) "r_drive" a.r_drive b.r_drive;
      check (Alcotest.float 1e-6) "c_input" a.c_input b.c_input;
      check (Alcotest.float 1e-3) "c_parasitic" a.c_parasitic b.c_parasitic)
    [ (Gate.Nand, 2); (Gate.Nor, 3); (Gate.Not, 1); (Gate.Xor, 2) ]

let test_fallback_for_missing_cells () =
  let lib = { Liberty.lname = "tiny"; cells = [] } in
  let a = Liberty.gate_model tech lib Gate.Nand ~arity:2 in
  let b = Gate_model.of_gate tech Gate.Nand ~arity:2 in
  check (Alcotest.float 1e-9) "fallback" b.r_drive a.r_drive

let test_sizing_through_library () =
  (* end-to-end: the full optimizer runs on a library-derived model and
     produces the same result as the analytic one when the library came
     from the same tech *)
  let nl = Gen.c17 () in
  let lib = Liberty.of_tech tech in
  let analytic = Elmore.of_netlist tech nl in
  let via_lib =
    Elmore.of_netlist_with ~model_of:(Liberty.gate_model tech lib) tech nl
  in
  let d0a = Sweep.dmin analytic and d0b = Sweep.dmin via_lib in
  check (Alcotest.float 1e-3) "same dmin" d0a d0b;
  let ra = Minflotransit.optimize analytic ~target:(0.5 *. d0a) in
  let rb = Minflotransit.optimize via_lib ~target:(0.5 *. d0b) in
  check bool "both met" true (ra.met && rb.met);
  check (Alcotest.float 1e-3) "same area" ra.area rb.area

let test_parse_errors () =
  let expect text =
    match Liberty.parse_string text with
    | exception Liberty.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect "";
  expect "cell (X) { }";
  expect "library (l) { cell (X) { area : ; } }";
  expect "library (l) { /* unterminated";
  expect "library (l) { cell (X) { function : \"unterminated } }"

let prop_liberty_garbage_safe =
  QCheck.Test.make ~name:"liberty parser turns garbage into Parse_error"
    ~count:200
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun text ->
      match Liberty.parse_string text with
      | _ -> true
      | exception Liberty.Parse_error _ -> true
      | exception _ -> false)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "liberty"
    [ ( "parse",
        [ tc "sample" `Quick test_parse_sample;
          tc "pin groups" `Quick test_pin_group_capacitance;
          tc "errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest prop_liberty_garbage_safe ] );
      ( "models",
        [ tc "roundtrip" `Quick test_roundtrip_of_tech;
          tc "matches analytic" `Quick test_gate_model_matches_analytic;
          tc "fallback" `Quick test_fallback_for_missing_cells;
          tc "sizing through library" `Quick test_sizing_through_library ] ) ]
