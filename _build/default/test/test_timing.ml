(* Tests for STA (Eq. 8 invariants) and delay balancing (Theorems 1-2). *)

module Gate = Minflo_netlist.Gate
module Netlist = Minflo_netlist.Netlist
module Gen = Minflo_netlist.Generators
module Tech = Minflo_tech.Tech
module DM = Minflo_tech.Delay_model
module Elmore = Minflo_tech.Elmore
module Sta = Minflo_timing.Sta
module Balance = Minflo_timing.Balance
module Digraph = Minflo_graph.Digraph
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let tech = Tech.default_130nm

let random_model seed =
  let nl = Gen.random_dag ~gates:40 ~inputs:6 ~outputs:5 ~seed () in
  Elmore.of_netlist tech nl

let random_sizes rng model =
  Array.init (DM.num_vertices model) (fun _ ->
      model.DM.min_size +. Rng.float rng 7.0)

(* ---------- STA ---------- *)

let test_sta_paper_example () =
  (* the DAG of figure 3: delays and expected AT/RT/slack triplets *)
  let g = Digraph.create () in
  (* vertices: 0..6 with delays 2,1,4,2,2,1,3 wired per the figure spirit:
     a small reconvergent DAG with CP = 8 *)
  ignore (Digraph.add_nodes g 5);
  (* chain: 0(d2) -> 1(d2) -> 2(d4) and side 3(d1) -> 2 ; 4(d3) -> 1 *)
  ignore (Digraph.add_edge g 0 1);
  ignore (Digraph.add_edge g 1 2);
  ignore (Digraph.add_edge g 3 2);
  ignore (Digraph.add_edge g 4 1);
  let delays = [| 2.0; 2.0; 4.0; 1.0; 3.0 |] in
  let model : DM.t =
    { graph = g;
      a_self = Array.make 5 0.0;
      a_coeffs = Array.make 5 [||];
      b = Array.make 5 0.0;
      area_weight = Array.make 5 1.0;
      is_sink = [| false; false; true; false; false |];
      block = Array.init 5 Fun.id;
      labels = Array.init 5 string_of_int;
      min_size = 1.0;
      max_size = 16.0 }
  in
  let sta = Sta.analyze model ~delays ~deadline:9.0 in
  check (Alcotest.float 1e-9) "cp" 9.0 sta.critical_path;
  (* worst path: 4(3) -> 1(2) -> 2(4) = 9 *)
  check (Alcotest.float 1e-9) "at 1" 3.0 sta.arrival.(1);
  check (Alcotest.float 1e-9) "at 2" 5.0 sta.arrival.(2);
  check (Alcotest.float 1e-9) "rt 2" 5.0 sta.required.(2);
  check (Alcotest.float 1e-9) "slack 2" 0.0 sta.slack.(2);
  check (Alcotest.float 1e-9) "slack 0" 1.0 sta.slack.(0);
  check bool "safe at 9" true (Sta.is_safe sta);
  let tight = Sta.analyze model ~delays ~deadline:8.0 in
  check bool "unsafe at 8" false (Sta.is_safe tight)

let prop_sta_invariants =
  QCheck.Test.make ~name:"STA: AT/RT/slack invariants on random circuits"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 31) in
      let rng = Rng.create (seed + 77) in
      let x = random_sizes rng model in
      let delays = DM.delays model x in
      let deadline = 1.2 *. Sta.critical_path_only model ~delays in
      let sta = Sta.analyze model ~delays ~deadline in
      let g = model.DM.graph in
      let ok = ref true in
      (* AT(j) >= AT(i) + delay(i) along edges, with equality for some
         fanin; RT(i) <= RT(j) - delay(i); edge slack >= min vertex slack *)
      Digraph.iter_edges g (fun e ->
          let i = Digraph.src g e and j = Digraph.dst g e in
          if sta.arrival.(j) +. 1e-6 < sta.arrival.(i) +. delays.(i) then ok := false;
          if sta.required.(i) > sta.required.(j) -. delays.(i) +. 1e-6 then ok := false;
          if Sta.edge_slack sta ~delays model e < -1e-6 then ok := false);
      (* sources have AT = 0 *)
      Digraph.iter_nodes g (fun v ->
          if Digraph.in_degree g v = 0 && sta.arrival.(v) <> 0.0 then ok := false);
      (* CP equals the max finish time *)
      let cp = ref 0.0 in
      Digraph.iter_nodes g (fun v -> cp := max !cp (sta.arrival.(v) +. delays.(v)));
      if abs_float (!cp -. sta.critical_path) > 1e-6 then ok := false;
      !ok)

let prop_worst_path_realizes_cp =
  QCheck.Test.make ~name:"worst_path sums to the critical path" ~count:60
    QCheck.small_nat (fun seed ->
      let model = random_model (seed + 131) in
      let rng = Rng.create (seed + 7) in
      let x = random_sizes rng model in
      let delays = DM.delays model x in
      let path = Sta.worst_path model ~delays in
      let total = List.fold_left (fun acc i -> acc +. delays.(i)) 0.0 path in
      let cp = Sta.critical_path_only model ~delays in
      abs_float (total -. cp) < 1e-6 *. cp)

(* ---------- balancing ---------- *)

let prop_balance_valid =
  QCheck.Test.make ~name:"ALAP and ASAP balanced configurations check out"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 219) in
      let rng = Rng.create (seed + 5) in
      let x = random_sizes rng model in
      let delays = DM.delays model x in
      let deadline = 1.3 *. Sta.critical_path_only model ~delays in
      List.for_all
        (fun mode ->
          let bal = Balance.balance ~mode model ~delays ~deadline in
          Result.is_ok (Balance.check model ~delays bal))
        [ `Alap; `Asap ])

let prop_theorem1_displacement =
  QCheck.Test.make
    ~name:"Theorem 1: balanced configurations differ by a displacement"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 411) in
      let rng = Rng.create (seed + 3) in
      let x = random_sizes rng model in
      let delays = DM.delays model x in
      let deadline = 1.25 *. Sta.critical_path_only model ~delays in
      let a = Balance.balance ~mode:`Asap model ~delays ~deadline in
      let b = Balance.balance ~mode:`Alap model ~delays ~deadline in
      let r = Balance.displacement_between a b in
      let moved = Balance.displace model a r in
      (* the displaced ASAP configuration must equal the ALAP one *)
      let close u v = abs_float (u -. v) < 1e-6 in
      Array.for_all2 close moved.edge_fsdu b.edge_fsdu
      && Array.for_all2 close moved.source_fsdu b.source_fsdu
      && Array.for_all2 close moved.sink_fsdu b.sink_fsdu
      && Result.is_ok (Balance.check model ~delays moved))

let prop_theorem2_path_invariance =
  QCheck.Test.make
    ~name:"Theorem 2: random displacements preserve total path content"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 613) in
      let rng = Rng.create (seed + 11) in
      let x = random_sizes rng model in
      let delays = DM.delays model x in
      let deadline = 1.3 *. Sta.critical_path_only model ~delays in
      let bal = Balance.balance model ~delays ~deadline in
      (* arbitrary (possibly illegal) displacement *)
      let r =
        Array.init (DM.num_vertices model) (fun _ -> Rng.float rng 100.0 -. 50.0)
      in
      let moved = Balance.displace model bal r in
      (* walk a few random source-to-sink paths and compare content *)
      let g = model.DM.graph in
      let content (b : Balance.t) path_edges src snk =
        b.source_fsdu.(src) +. b.sink_fsdu.(snk)
        +. List.fold_left
             (fun acc e -> acc +. b.edge_fsdu.(e) +. delays.(Digraph.src g e))
             0.0 path_edges
        +. delays.(snk)
      in
      let sources =
        List.filter (fun v -> Digraph.in_degree g v = 0)
          (List.init (DM.num_vertices model) Fun.id)
      in
      let rec random_walk v acc =
        if model.DM.is_sink.(v) && (Digraph.out_degree g v = 0 || Rng.bool rng) then
          Some (List.rev acc, v)
        else begin
          match Digraph.out_edges g v with
          | [] -> if model.DM.is_sink.(v) then Some (List.rev acc, v) else None
          | edges ->
            let e = List.nth edges (Rng.int rng (List.length edges)) in
            random_walk (Digraph.dst g e) (e :: acc)
        end
      in
      let ok = ref true in
      List.iter
        (fun src ->
          match random_walk src [] with
          | None -> ()
          | Some (edges, snk) ->
            let c0 = content bal edges src snk in
            let c1 = content moved edges src snk in
            if abs_float (c0 -. c1) > 1e-6 then ok := false;
            (* and the balanced content equals the deadline *)
            if abs_float (c0 -. bal.deadline) > 1e-6 then ok := false)
        sources;
      !ok)

(* ---------- incremental STA ---------- *)

module Inc = Minflo_timing.Incremental

let prop_incremental_matches_batch =
  QCheck.Test.make
    ~name:"incremental engine tracks the batch STA under random mutations"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 901) in
      let rng = Rng.create (seed + 13) in
      let n = DM.num_vertices model in
      let x0 = Array.make n 1.0 in
      let eng = Inc.create model ~sizes:x0 in
      let ok = ref true in
      for _ = 1 to 25 do
        let i = Rng.int rng n in
        let nx = 1.0 +. Rng.float rng 9.0 in
        Inc.set_size eng i nx;
        (* compare against a from-scratch computation *)
        let x = Inc.sizes eng in
        let delays = DM.delays model x in
        let at = Sta.arrivals model ~delays in
        for v = 0 to n - 1 do
          if abs_float (Inc.arrival eng v -. at.(v)) > 1e-6 *. (1.0 +. at.(v)) then
            ok := false;
          if abs_float (Inc.delay eng v -. delays.(v)) > 1e-6 *. (1.0 +. delays.(v))
          then ok := false
        done;
        let cp = Sta.critical_path_only model ~delays in
        if abs_float (Inc.critical_path eng -. cp) > 1e-6 *. (1.0 +. cp) then
          ok := false
      done;
      !ok)

let prop_incremental_critical_set_matches =
  QCheck.Test.make
    ~name:"incremental critical set equals the batch minimum-slack set"
    ~count:60 QCheck.small_nat (fun seed ->
      let model = random_model (seed + 1901) in
      let rng = Rng.create (seed + 29) in
      let n = DM.num_vertices model in
      let x = Array.init n (fun _ -> 1.0 +. Rng.float rng 5.0) in
      let eng = Inc.create model ~sizes:x in
      let delays = DM.delays model x in
      let sta = Sta.analyze model ~delays ~deadline:(2.0 *. Inc.critical_path eng) in
      let batch =
        List.sort compare (Sta.critical_vertices ~eps:(1e-7 *. sta.critical_path) sta)
      in
      let inc = List.sort compare (Inc.critical_set ~eps_rel:1e-7 eng) in
      batch = inc)

let test_incremental_shrink_and_grow () =
  let model = random_model 4242 in
  let n = DM.num_vertices model in
  let eng = Inc.create model ~sizes:(Array.make n 1.0) in
  let cp0 = Inc.critical_path eng in
  (* growing a critical vertex reduces (or keeps) the critical path *)
  (match Inc.critical_set eng with
  | [] -> Alcotest.fail "empty critical set"
  | v :: _ ->
    Inc.set_size eng v 8.0;
    check bool "tracked" true (Inc.size eng v = 8.0);
    Inc.set_size eng v 1.0;
    let cp1 = Inc.critical_path eng in
    check bool "restores" true (abs_float (cp1 -. cp0) < 1e-6 *. cp0))

let test_balance_unsafe_rejected () =
  let model = random_model 99 in
  let x = DM.uniform_sizes model 1.0 in
  let delays = DM.delays model x in
  let cp = Sta.critical_path_only model ~delays in
  match Balance.balance model ~delays ~deadline:(0.5 *. cp) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of unsafe circuit"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "timing"
    [ ( "sta",
        [ tc "figure 3 example" `Quick test_sta_paper_example;
          QCheck_alcotest.to_alcotest prop_sta_invariants;
          QCheck_alcotest.to_alcotest prop_worst_path_realizes_cp ] );
      ( "incremental",
        [ QCheck_alcotest.to_alcotest prop_incremental_matches_batch;
          QCheck_alcotest.to_alcotest prop_incremental_critical_set_matches;
          tc "shrink and grow" `Quick test_incremental_shrink_and_grow ] );
      ( "balance",
        [ QCheck_alcotest.to_alcotest prop_balance_valid;
          QCheck_alcotest.to_alcotest prop_theorem1_displacement;
          QCheck_alcotest.to_alcotest prop_theorem2_path_invariance;
          tc "unsafe rejected" `Quick test_balance_unsafe_rejected ] ) ]
