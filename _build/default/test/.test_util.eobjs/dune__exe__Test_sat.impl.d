test/test_sat.ml: Alcotest Array List Minflo_bdd Minflo_netlist Minflo_sat Minflo_util QCheck QCheck_alcotest
