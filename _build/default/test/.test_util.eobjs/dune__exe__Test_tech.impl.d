test/test_tech.ml: Alcotest Array Fun Hashtbl List Minflo_graph Minflo_netlist Minflo_tech Option Printf QCheck QCheck_alcotest Result
