test/test_retiming.ml: Alcotest Array Minflo_retiming Minflo_util Printf QCheck QCheck_alcotest
