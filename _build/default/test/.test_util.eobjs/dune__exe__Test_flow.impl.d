test/test_flow.ml: Alcotest Array List Minflo_flow Minflo_util QCheck QCheck_alcotest Result
