test/test_power.ml: Alcotest Array List Minflo_netlist Minflo_power Minflo_sizing Minflo_tech Minflo_util QCheck QCheck_alcotest
