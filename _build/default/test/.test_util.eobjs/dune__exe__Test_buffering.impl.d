test/test_buffering.ml: Alcotest List Minflo_buffering Minflo_tech Minflo_util Printf QCheck QCheck_alcotest String
