test/test_liberty.ml: Alcotest List Minflo_netlist Minflo_sizing Minflo_tech QCheck QCheck_alcotest
