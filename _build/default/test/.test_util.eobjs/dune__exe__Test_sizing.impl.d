test/test_sizing.ml: Alcotest Array List Minflo_netlist Minflo_sizing Minflo_tech Minflo_timing Minflo_util QCheck QCheck_alcotest Result
