test/test_verilog.ml: Alcotest List Minflo_bdd Minflo_netlist Minflo_util QCheck QCheck_alcotest
