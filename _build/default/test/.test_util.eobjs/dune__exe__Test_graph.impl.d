test/test_graph.ml: Alcotest Array List Minflo_graph Minflo_util QCheck QCheck_alcotest String
