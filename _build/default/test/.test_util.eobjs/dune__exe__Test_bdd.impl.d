test/test_bdd.ml: Alcotest Array Fun List Minflo_bdd Minflo_netlist Minflo_util Option QCheck QCheck_alcotest
