test/test_aig.ml: Alcotest Array List Minflo_aig Minflo_bdd Minflo_netlist Minflo_sat Minflo_util QCheck QCheck_alcotest
