test/test_util.ml: Alcotest Array Float Fun Hashtbl List Minflo_util Printf QCheck QCheck_alcotest String
