test/test_netlist.ml: Alcotest Array Fun List Minflo_graph Minflo_netlist Minflo_util Option Printf QCheck QCheck_alcotest String
