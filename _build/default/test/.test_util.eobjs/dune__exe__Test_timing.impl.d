test/test_timing.ml: Alcotest Array Fun List Minflo_graph Minflo_netlist Minflo_tech Minflo_timing Minflo_util QCheck QCheck_alcotest Result
