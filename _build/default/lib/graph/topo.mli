(** Topological ordering and DAG utilities.

    The sizing algorithms rely on processing the circuit DAG in topological
    order (forward for arrival times and sensitivity weights, backward for
    required times and the W-phase least-fixpoint sweep). *)

exception Cycle of Digraph.node list
(** Raised with (a fragment of) an offending cycle. *)

val sort : Digraph.t -> Digraph.node array
(** Kahn's algorithm. @raise Cycle if the graph is not a DAG. *)

val sort_opt : Digraph.t -> Digraph.node array option
(** [None] instead of raising. *)

val is_dag : Digraph.t -> bool

val levels : Digraph.t -> int array
(** [levels g] assigns each node the length of the longest edge path
    reaching it from any source (ASAP level). @raise Cycle on cycles. *)

val depth : Digraph.t -> int
(** Longest path length (in edges); 0 for an edgeless graph. *)

val longest_path_to : Digraph.t -> weight:(Digraph.node -> float) -> float array
(** [longest_path_to g ~weight] computes, for every node, the maximum of
    [sum of weight] over paths ending at (and including) that node —
    i.e. a node-weighted longest-path/arrival-time computation. *)
