exception Cycle of Digraph.node list

let sort_opt g =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges g (fun e ->
      let v = Digraph.dst g e in
      indeg.(v) <- indeg.(v) + 1);
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then Queue.add u queue
  done;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!k) <- u;
    incr k;
    List.iter
      (fun e ->
        let v = Digraph.dst g e in
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (Digraph.out_edges g u)
  done;
  if !k = n then Some order else None

let cycle_witness g =
  (* Gray/black DFS to extract one cycle for the error message. *)
  let n = Digraph.node_count g in
  let color = Array.make n 0 in
  let exception Found of int list in
  let rec dfs path u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if color.(v) = 1 then raise (Found (v :: path))
        else if color.(v) = 0 then dfs (v :: path) v)
      (Digraph.succ g u);
    color.(u) <- 2
  in
  try
    for u = 0 to n - 1 do
      if color.(u) = 0 then dfs [ u ] u
    done;
    []
  with Found path -> List.rev path

let sort g =
  match sort_opt g with
  | Some order -> order
  | None -> raise (Cycle (cycle_witness g))

let is_dag g = Option.is_some (sort_opt g)

let levels g =
  let order = sort g in
  let level = Array.make (Digraph.node_count g) 0 in
  Array.iter
    (fun u ->
      List.iter
        (fun v -> level.(v) <- max level.(v) (level.(u) + 1))
        (Digraph.succ g u))
    order;
  level

let depth g =
  let l = levels g in
  Array.fold_left max 0 l

let longest_path_to g ~weight =
  let order = sort g in
  let n = Digraph.node_count g in
  let dist = Array.make n 0.0 in
  Array.iter
    (fun u ->
      let from_preds =
        List.fold_left (fun acc p -> max acc dist.(p)) 0.0 (Digraph.pred g u)
      in
      dist.(u) <- from_preds +. weight u)
    order;
  dist
