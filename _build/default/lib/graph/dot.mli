(** Graphviz DOT export, for debugging circuit DAGs and flow networks. *)

val to_dot :
  ?name:string ->
  ?node_label:(Digraph.node -> string) ->
  ?edge_label:(Digraph.edge -> string) ->
  Digraph.t ->
  string

val write_file :
  ?name:string ->
  ?node_label:(Digraph.node -> string) ->
  ?edge_label:(Digraph.edge -> string) ->
  string ->
  Digraph.t ->
  unit
