(** Mutable directed graphs over dense integer node ids.

    Nodes and edges are created incrementally and identified by the [int]
    returned at creation; ids are dense, so client code attaches attributes
    in plain arrays indexed by id. This is the common representation for the
    circuit DAG of the paper (Section 2.2), the timing graph, and the
    min-cost-flow constraint network. *)

type t

type node = int
type edge = int

val create : ?nodes_hint:int -> unit -> t

val add_node : t -> node
(** Fresh node; ids are consecutive starting at 0. *)

val add_nodes : t -> int -> node
(** [add_nodes g k] adds [k] nodes and returns the id of the first. *)

val add_edge : t -> node -> node -> edge
(** [add_edge g u v] adds a directed edge [u -> v] and returns its id.
    Parallel edges and self-loops are allowed (flow networks use both). *)

val node_count : t -> int
val edge_count : t -> int

val src : t -> edge -> node
val dst : t -> edge -> node

val out_edges : t -> node -> edge list
(** Edges leaving a node, in insertion order. *)

val in_edges : t -> node -> edge list

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val succ : t -> node -> node list
val pred : t -> node -> node list

val iter_nodes : t -> (node -> unit) -> unit
val iter_edges : t -> (edge -> unit) -> unit

val find_edge : t -> node -> node -> edge option
(** First edge [u -> v] if any. *)
