module Vec = Minflo_util.Vec

type node = int
type edge = int

type t = {
  esrc : int Vec.t;
  edst : int Vec.t;
  out_adj : int list Vec.t; (* reversed insertion order, fixed on read *)
  in_adj : int list Vec.t;
}

let create ?(nodes_hint = 16) () =
  { esrc = Vec.create ~capacity:(4 * nodes_hint) ~dummy:(-1) ();
    edst = Vec.create ~capacity:(4 * nodes_hint) ~dummy:(-1) ();
    out_adj = Vec.create ~capacity:nodes_hint ~dummy:[] ();
    in_adj = Vec.create ~capacity:nodes_hint ~dummy:[] () }

let add_node g =
  let id = Vec.push g.out_adj [] in
  let id' = Vec.push g.in_adj [] in
  assert (id = id');
  id

let add_nodes g k =
  if k <= 0 then invalid_arg "Digraph.add_nodes";
  let first = add_node g in
  for _ = 2 to k do ignore (add_node g) done;
  first

let node_count g = Vec.length g.out_adj
let edge_count g = Vec.length g.esrc

let check_node g u =
  if u < 0 || u >= node_count g then invalid_arg "Digraph: bad node id"

let add_edge g u v =
  check_node g u;
  check_node g v;
  let e = Vec.push g.esrc u in
  let e' = Vec.push g.edst v in
  assert (e = e');
  Vec.set g.out_adj u (e :: Vec.get g.out_adj u);
  Vec.set g.in_adj v (e :: Vec.get g.in_adj v);
  e

let src g e = Vec.get g.esrc e
let dst g e = Vec.get g.edst e
let out_edges g u = List.rev (Vec.get g.out_adj u)
let in_edges g u = List.rev (Vec.get g.in_adj u)
let out_degree g u = List.length (Vec.get g.out_adj u)
let in_degree g u = List.length (Vec.get g.in_adj u)
let succ g u = List.map (dst g) (out_edges g u)
let pred g u = List.map (src g) (in_edges g u)

let iter_nodes g f = for u = 0 to node_count g - 1 do f u done
let iter_edges g f = for e = 0 to edge_count g - 1 do f e done

let find_edge g u v =
  let rec loop = function
    | [] -> None
    | e :: rest -> if dst g e = v then Some e else loop rest
  in
  loop (out_edges g u)
