module Bitset = Minflo_util.Bitset
module Union_find = Minflo_util.Union_find

let dfs_post g ~roots =
  let n = Digraph.node_count g in
  let seen = Bitset.create n in
  let acc = ref [] in
  (* Explicit stack to stay safe on deep circuits (c6288-scale chains). *)
  let visit u =
    if not (Bitset.mem seen u) then begin
      Bitset.add seen u;
      let stack = ref [ (u, Digraph.succ g u) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, next) :: rest -> (
          match next with
          | [] ->
            acc := v :: !acc;
            stack := rest
          | w :: ws ->
            stack := (v, ws) :: rest;
            if not (Bitset.mem seen w) then begin
              Bitset.add seen w;
              stack := (w, Digraph.succ g w) :: !stack
            end)
      done
    end
  in
  List.iter visit roots;
  List.rev !acc

let reach step g ~roots =
  let n = Digraph.node_count g in
  let seen = Bitset.create n in
  let queue = Queue.create () in
  List.iter
    (fun u ->
      if not (Bitset.mem seen u) then begin
        Bitset.add seen u;
        Queue.add u queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not (Bitset.mem seen v) then begin
          Bitset.add seen v;
          Queue.add v queue
        end)
      (step g u)
  done;
  seen

let reachable g ~roots = reach Digraph.succ g ~roots
let reachable_rev g ~roots = reach Digraph.pred g ~roots

let weakly_connected_components g =
  let n = Digraph.node_count g in
  if n = 0 then 0
  else begin
    let uf = Union_find.create n in
    Digraph.iter_edges g (fun e -> Union_find.union uf (Digraph.src g e) (Digraph.dst g e));
    Union_find.count uf
  end
