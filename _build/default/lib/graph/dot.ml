let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\\\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "g") ?node_label ?edge_label g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Digraph.iter_nodes g (fun u ->
      let label =
        match node_label with
        | Some f -> Printf.sprintf " [label=\"%s\"]" (escape (f u))
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d%s;\n" u label));
  Digraph.iter_edges g (fun e ->
      let label =
        match edge_label with
        | Some f -> Printf.sprintf " [label=\"%s\"]" (escape (f e))
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d%s;\n" (Digraph.src g e) (Digraph.dst g e) label));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?node_label ?edge_label path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?node_label ?edge_label g))
