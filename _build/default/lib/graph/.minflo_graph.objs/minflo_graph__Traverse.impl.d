lib/graph/traverse.ml: Digraph List Minflo_util Queue
