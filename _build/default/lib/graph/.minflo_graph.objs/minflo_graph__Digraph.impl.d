lib/graph/digraph.ml: List Minflo_util
