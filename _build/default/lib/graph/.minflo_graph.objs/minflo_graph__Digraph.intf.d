lib/graph/digraph.mli:
