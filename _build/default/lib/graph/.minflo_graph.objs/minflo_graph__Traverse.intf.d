lib/graph/traverse.mli: Digraph Minflo_util
