lib/graph/dot.ml: Buffer Digraph Fun Printf String
