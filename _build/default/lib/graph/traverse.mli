(** Graph traversals and reachability. *)

val dfs_post : Digraph.t -> roots:Digraph.node list -> Digraph.node list
(** Nodes in DFS postorder from the given roots (each node once). *)

val reachable : Digraph.t -> roots:Digraph.node list -> Minflo_util.Bitset.t
(** Forward reachability from the roots. *)

val reachable_rev : Digraph.t -> roots:Digraph.node list -> Minflo_util.Bitset.t
(** Backward reachability (who can reach a root). *)

val weakly_connected_components : Digraph.t -> int
(** Number of weakly connected components. *)
