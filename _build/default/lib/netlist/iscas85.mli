(** The evaluation suite of the paper: synthetic stand-ins for the ISCAS85
    benchmark circuits plus the ripple-carry adders, with the published
    Table 1 reference numbers attached.

    The original ISCAS85 netlists are not redistributable inside this
    repository, so each circuit is assembled from functional blocks that
    match the benchmark's documented role (c432 interrupt controller →
    priority logic; c499/c1355 → 32-bit SEC; c6288 → 16x16 multiplier; …)
    and padded with locality-biased random logic to the published gate
    count. Real [.bench] files can be used instead via
    {!Bench_format.parse_file}. See DESIGN.md for the substitution
    rationale. *)

type info = {
  name : string;
  description : string;
  gates_published : int;  (** "# Gates" column of Table 1. *)
  delay_spec : float;
      (** Table 1 delay target as a fraction of the minimum-size delay. *)
  paper_area_saving_pct : float;
      (** Paper-reported area saving of MINFLOTRANSIT over TILOS (%). *)
  paper_cpu_tilos_s : float;   (** Table 1 TILOS CPU seconds (UltraSparc 10). *)
  paper_cpu_ours_s : float;    (** Table 1 MINFLOTRANSIT CPU seconds. *)
}

val suite : info list
(** The 12 rows of Table 1, in the paper's order. *)

val find_info : string -> info option

val circuit : string -> Netlist.t
(** Builds the synthetic circuit for a Table 1 row name (e.g. ["c432"],
    ["adder32"]). Deterministic. @raise Invalid_argument for unknown
    names. *)

val all_circuits : unit -> (info * Netlist.t) list
