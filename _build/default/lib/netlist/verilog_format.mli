(** Reader and writer for gate-level structural Verilog.

    The subset every ISCAS85 distribution and most academic netlists use:
    one module, [input]/[output]/[wire] declarations, and primitive gate
    instantiations with the output as the first terminal:

    {v module c17 (N1, N2, N3, N6, N7, N22, N23);
         input  N1, N2, N3, N6, N7;
         output N22, N23;
         wire   N10, N11, N16, N19;
         nand NAND2_1 (N10, N1, N3);
         ...
       endmodule v}

    Instance names are optional; [//] and [/* */] comments are handled;
    multiple declarations per keyword and statements spanning lines are
    fine. Behavioral constructs ([assign], [always], ...) are rejected with
    a located error. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Netlist.t
(** The netlist takes the module's name unless [name] is given.
    @raise Parse_error on malformed or unsupported input. *)

val parse_file : string -> Netlist.t

val to_string : Netlist.t -> string
(** Structural Verilog; identifiers unsuitable for Verilog are escaped with
    a [n_] prefix scheme so the output always re-parses. *)

val write_file : string -> Netlist.t -> unit
