(** Structural netlist transformations. *)

val expand_xor : Netlist.t -> Netlist.t
(** Replace every XOR/XNOR gate by a 2-input NAND network (4 NANDs per
    2-input XOR stage, plus an inverter for XNOR). This is precisely the
    relationship between the real c499 and c1355 benchmarks; we use it the
    same way to derive the c1355 stand-in. N-ary XORs are expanded as
    left-to-right chains. *)

val to_nand_inv : Netlist.t -> Netlist.t
(** Map the whole netlist onto {NAND2, NOT}: AND/OR/NOR are rewritten with
    De Morgan identities, wide gates become balanced NAND/NOT trees, and
    XOR/XNOR use {!expand_xor}'s pattern. Functional equivalence is covered
    by the property tests. *)
