let weight2 ~checks ~count =
  if checks * (checks - 1) / 2 < count then
    invalid_arg "Sec_codes.weight2: code space too small";
  let acc = ref [] in
  for c = (1 lsl checks) - 1 downto 1 do
    let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
    if popcount c = 2 then acc := c :: !acc
  done;
  Array.sub (Array.of_list !acc) 0 count
