(** Logic gate kinds, in the vocabulary of the ISCAS85 [.bench] format. *)

type kind =
  | And
  | Nand
  | Or
  | Nor
  | Not
  | Buf
  | Xor
  | Xnor

val to_string : kind -> string
(** Upper-case [.bench] mnemonic, e.g. [Nand -> "NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive parse; recognizes both ["BUF"] and ["BUFF"]. *)

val min_arity : kind -> int
val max_arity : kind -> int option
(** [None] when the gate takes any number of inputs >= {!min_arity}. *)

val eval : kind -> bool array -> bool
(** Boolean function of the gate; used by the functional-equivalence tests
    of the generators. @raise Invalid_argument on arity violations. *)

val all : kind list
