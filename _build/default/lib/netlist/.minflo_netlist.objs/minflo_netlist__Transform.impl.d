lib/netlist/transform.ml: Array Gate List Netlist Printf
