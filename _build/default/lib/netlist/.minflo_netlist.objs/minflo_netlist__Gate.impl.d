lib/netlist/gate.ml: Array Fun Printf String
