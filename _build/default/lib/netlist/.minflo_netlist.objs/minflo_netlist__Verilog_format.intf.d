lib/netlist/verilog_format.mli: Netlist
