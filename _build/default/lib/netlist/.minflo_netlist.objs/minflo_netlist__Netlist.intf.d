lib/netlist/netlist.mli: Format Gate Minflo_graph
