lib/netlist/bench_format.mli: Netlist
