lib/netlist/verilog_format.ml: Buffer Filename Fun Gate Hashtbl List Netlist Option Printf String
