lib/netlist/sec_codes.mli:
