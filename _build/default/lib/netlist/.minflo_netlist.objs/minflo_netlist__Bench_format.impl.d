lib/netlist/bench_format.ml: Buffer Filename Fun Gate List Netlist Option Printf String
