lib/netlist/sec_codes.ml: Array
