lib/netlist/iscas85.mli: Netlist
