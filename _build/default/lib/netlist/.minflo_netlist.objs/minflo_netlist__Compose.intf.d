lib/netlist/compose.mli: Netlist
