lib/netlist/iscas85.ml: Compose Generators List Netlist Option Printf Transform
