lib/netlist/compose.ml: Array Gate List Minflo_util Netlist Printf
