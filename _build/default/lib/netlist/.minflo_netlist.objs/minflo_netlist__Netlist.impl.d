lib/netlist/netlist.ml: Array Format Fun Gate Hashtbl List Minflo_graph Minflo_util Option Printf String
