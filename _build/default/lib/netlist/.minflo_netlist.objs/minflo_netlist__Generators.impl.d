lib/netlist/generators.ml: Array Fun Gate List Minflo_util Netlist Printf Sec_codes
