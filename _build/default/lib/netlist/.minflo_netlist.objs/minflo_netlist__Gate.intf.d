lib/netlist/gate.mli:
