(** Netlist composition utilities for assembling synthetic benchmarks. *)

val copy_into : prefix:string -> Netlist.t -> Netlist.t -> int array
(** [copy_into ~prefix src dst] appends a renamed copy of [src] to [dst] and
    returns the old-id -> new-id map. Outputs of [src] become outputs of
    [dst]. *)

val merge : name:string -> Netlist.t list -> Netlist.t
(** Disjoint union; node names are prefixed with ["uK_"] (K = block index).
    Outputs of every block stay outputs. *)

val pad_random :
  Netlist.t -> target_gates:int -> seed:int -> ?extra_inputs:int -> unit -> Netlist.t
(** Rebuilds the netlist with additional random logic so the gate count hits
    [target_gates] exactly: random 2-input gates tapping existing nets (and
    [extra_inputs] fresh primary inputs), XOR-collected into one extra
    primary output, keeping everything live and the depth increase
    logarithmic. Returns the netlist unchanged if it is already at or above
    the target. *)
