type info = {
  name : string;
  description : string;
  gates_published : int;
  delay_spec : float;
  paper_area_saving_pct : float;
  paper_cpu_tilos_s : float;
  paper_cpu_ours_s : float;
}

let suite =
  [ { name = "adder32"; description = "32-bit ripple-carry adder";
      gates_published = 480; delay_spec = 0.5; paper_area_saving_pct = 1.0;
      paper_cpu_tilos_s = 2.2; paper_cpu_ours_s = 5.0 };
    { name = "adder256"; description = "256-bit ripple-carry adder";
      gates_published = 3840; delay_spec = 0.5; paper_area_saving_pct = 1.0;
      paper_cpu_tilos_s = 262.0; paper_cpu_ours_s = 608.0 };
    { name = "c432"; description = "27-channel interrupt controller";
      gates_published = 160; delay_spec = 0.4; paper_area_saving_pct = 9.4;
      paper_cpu_tilos_s = 0.5; paper_cpu_ours_s = 4.8 };
    { name = "c499"; description = "32-bit single-error-correcting circuit";
      gates_published = 202; delay_spec = 0.57; paper_area_saving_pct = 7.2;
      paper_cpu_tilos_s = 1.47; paper_cpu_ours_s = 11.26 };
    { name = "c880"; description = "8-bit ALU";
      gates_published = 383; delay_spec = 0.4; paper_area_saving_pct = 4.0;
      paper_cpu_tilos_s = 2.7; paper_cpu_ours_s = 8.2 };
    { name = "c1355"; description = "32-bit SEC circuit (NAND expansion)";
      gates_published = 546; delay_spec = 0.4; paper_area_saving_pct = 9.5;
      paper_cpu_tilos_s = 29.0; paper_cpu_ours_s = 76.0 };
    { name = "c1908"; description = "16-bit SEC/DED circuit";
      gates_published = 880; delay_spec = 0.4; paper_area_saving_pct = 4.6;
      paper_cpu_tilos_s = 36.0; paper_cpu_ours_s = 84.0 };
    { name = "c2670"; description = "12-bit ALU and controller";
      gates_published = 1193; delay_spec = 0.4; paper_area_saving_pct = 9.1;
      paper_cpu_tilos_s = 27.0; paper_cpu_ours_s = 69.0 };
    { name = "c3540"; description = "8-bit ALU with binary/BCD logic";
      gates_published = 1669; delay_spec = 0.4; paper_area_saving_pct = 7.7;
      paper_cpu_tilos_s = 226.0; paper_cpu_ours_s = 335.0 };
    { name = "c5315"; description = "9-bit ALU and data selector";
      gates_published = 2307; delay_spec = 0.4; paper_area_saving_pct = 2.0;
      paper_cpu_tilos_s = 90.0; paper_cpu_ours_s = 111.0 };
    { name = "c6288"; description = "16x16 array multiplier";
      gates_published = 2416; delay_spec = 0.4; paper_area_saving_pct = 16.5;
      paper_cpu_tilos_s = 1677.0; paper_cpu_ours_s = 2461.0 };
    { name = "c7552"; description = "32-bit adder/comparator";
      gates_published = 3512; delay_spec = 0.4; paper_area_saving_pct = 3.3;
      paper_cpu_tilos_s = 320.0; paper_cpu_ours_s = 363.0 } ]

let find_info name = List.find_opt (fun i -> i.name = name) suite

let rename nl name =
  (* Compose.merge with a single block just relabels the netlist *)
  let out = Netlist.create ~name () in
  ignore (Compose.copy_into ~prefix:"" nl out);
  Netlist.validate out;
  out

let build name =
  let pad ?(extra_inputs = 0) ~seed parts =
    let target = (Option.get (find_info name)).gates_published in
    let merged =
      match parts with
      | [ single ] -> rename single name
      | parts -> rename (Compose.merge ~name parts) name
    in
    Compose.pad_random merged ~target_gates:target ~seed ~extra_inputs ()
  in
  match name with
  | "adder32" -> Generators.ripple_carry_adder ~style:`Nand ~bits:32 ()
  | "adder256" -> Generators.ripple_carry_adder ~style:`Nand ~bits:256 ()
  | "c432" -> pad ~seed:432 [ Generators.priority_logic ~channels:27 () ]
  | "c499" -> pad ~seed:499 [ Generators.sec_circuit ~style:`Compact ~data_bits:32 () ]
  | "c880" ->
    pad ~seed:880 ~extra_inputs:14
      [ Generators.alu ~style:`Compact ~width:8 ();
        Generators.comparator ~width:8 ();
        Generators.mux_tree ~select_bits:3 () ]
  | "c1355" ->
    (* the real c1355 is c499 with each XOR expanded into 4 NANDs; derive
       our stand-in the same way *)
    pad ~seed:1355
      [ Transform.expand_xor (Generators.sec_circuit ~style:`Compact ~data_bits:32 ()) ]
  | "c1908" ->
    pad ~seed:1908 ~extra_inputs:4
      [ Transform.expand_xor (Generators.sec_circuit ~style:`Compact ~data_bits:16 ());
        Generators.parity_tree ~style:`Nand ~width:16 () ]
  | "c2670" ->
    pad ~seed:2670 ~extra_inputs:140
      [ Generators.alu ~style:`Compact ~width:12 ();
        Generators.comparator ~width:12 ();
        Generators.priority_logic ~channels:12 () ]
  | "c3540" ->
    pad ~seed:3540 ~extra_inputs:12
      [ Generators.alu ~style:`Nand ~width:8 ();
        Generators.alu ~style:`Compact ~width:8 ();
        Generators.mux_tree ~select_bits:4 () ]
  | "c5315" ->
    pad ~seed:5315 ~extra_inputs:100
      [ Generators.alu ~style:`Nand ~width:9 ();
        Generators.alu ~style:`Compact ~width:9 ();
        Generators.mux_tree ~select_bits:4 ();
        Generators.comparator ~width:9 () ]
  | "c6288" -> pad ~seed:6288 [ Generators.array_multiplier ~style:`Nand ~bits:16 () ]
  | "c7552" ->
    pad ~seed:7552 ~extra_inputs:80
      [ Generators.ripple_carry_adder ~style:`Nand ~bits:32 ();
        Generators.comparator ~width:32 ();
        Generators.alu ~style:`Nand ~width:16 () ]
  | other -> invalid_arg (Printf.sprintf "Iscas85.circuit: unknown circuit %S" other)

let circuit name = build name

let all_circuits () = List.map (fun i -> (i, circuit i.name)) suite
