type kind = And | Nand | Or | Nor | Not | Buf | Xor | Xnor

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Not -> "NOT"
  | Buf -> "BUFF"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let min_arity = function
  | Not | Buf -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2

let max_arity = function
  | Not | Buf -> Some 1
  | And | Nand | Or | Nor | Xor | Xnor -> None

let check_arity kind n =
  if n < min_arity kind then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s needs >= %d inputs, got %d" (to_string kind)
         (min_arity kind) n);
  match max_arity kind with
  | Some m when n > m ->
    invalid_arg
      (Printf.sprintf "Gate.eval: %s takes <= %d inputs, got %d" (to_string kind) m n)
  | _ -> ()

let eval kind inputs =
  check_arity kind (Array.length inputs);
  let conj = Array.for_all Fun.id inputs in
  let disj = Array.exists Fun.id inputs in
  let parity = Array.fold_left (fun acc b -> if b then not acc else acc) false inputs in
  match kind with
  | And -> conj
  | Nand -> not conj
  | Or -> disj
  | Nor -> not disj
  | Not -> not inputs.(0)
  | Buf -> inputs.(0)
  | Xor -> parity
  | Xnor -> not parity

let all = [ And; Nand; Or; Nor; Not; Buf; Xor; Xnor ]
