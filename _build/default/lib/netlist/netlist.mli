(** Gate-level combinational netlists.

    A netlist is a DAG of primary inputs and gates; some nodes are marked as
    primary outputs. Node ids are dense integers in creation order, so
    client code (timing graphs, sizing state) attaches attributes in plain
    arrays. Netlists are built incrementally and then frozen by {!validate};
    all analysis functions expect a validated netlist. *)

type node_kind =
  | Input
  | Gate of Gate.kind

type t

type node = int

(** {1 Construction} *)

val create : ?name:string -> unit -> t

val name : t -> string

val add_input : t -> string -> node
(** @raise Invalid_argument on duplicate names. *)

val add_gate : t -> string -> Gate.kind -> node list -> node
(** [add_gate nl name kind fanins]. Fanins must already exist.
    @raise Invalid_argument on duplicate names, arity violations, or unknown
    fanin ids. *)

val mark_output : t -> node -> unit
(** Marks a node as a primary output (idempotent). *)

val validate : t -> unit
(** Checks global invariants: at least one input and one output, every
    output reachable from some input (non-degenerate), acyclicity is
    guaranteed by construction. @raise Invalid_argument on violation. *)

(** {1 Access} *)

val node_count : t -> int
val gate_count : t -> int
(** Number of gate nodes (excludes primary inputs). *)

val input_count : t -> int
val kind : t -> node -> node_kind
val node_name : t -> node -> string
val find : t -> string -> node option
val fanins : t -> node -> node list
val fanouts : t -> node -> node list
(** Nodes that read this node's value (computed once, cached). *)

val fanout_degree : t -> node -> int
val inputs : t -> node list
val outputs : t -> node list
val is_output : t -> node -> bool
val iter_nodes : t -> (node -> unit) -> unit
val iter_gates : t -> (node -> unit) -> unit

(** {1 Analysis} *)

val topo_order : t -> node array
(** Inputs first, then gates in dependency order. *)

val levels : t -> int array
(** Logic level per node: 0 for inputs, 1 + max fanin level for gates. *)

val depth : t -> int

val to_digraph : t -> Minflo_graph.Digraph.t
(** One graph node per netlist node, same ids; one edge per (fanin, gate)
    pair. *)

val simulate : t -> bool array -> bool array
(** [simulate nl input_values] evaluates the circuit; input values are given
    in the order of {!inputs}. Returns one value per node. Used by the
    generator equivalence tests. *)

type stats = {
  num_inputs : int;
  num_outputs : int;
  num_gates : int;
  gates_by_kind : (Gate.kind * int) list;
  logic_depth : int;
  max_fanout : int;
  avg_fanin : float;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
