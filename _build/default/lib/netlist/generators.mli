(** Parametric circuit generators.

    These supply the evaluation workloads: ripple-carry adders (the paper's
    adder32/adder256 rows), an array multiplier (the c6288 stand-in), and
    the building blocks — parity/SEC logic, ALUs, priority logic, mux trees
    — from which {!Iscas85} assembles synthetic versions of the other
    benchmark circuits.

    Arithmetic generators come in two styles: [`Compact] uses XOR/AND/OR
    macro-gates; [`Nand] expands everything into 2-input NAND networks
    (the decomposition that gives c1355 and c6288 their published gate
    counts). All generators produce validated netlists, and the arithmetic
    ones are checked for functional correctness by the test-suite via
    {!Netlist.simulate}. *)

type style = [ `Compact | `Nand ]

val ripple_carry_adder : ?style:style -> bits:int -> unit -> Netlist.t
(** [bits]-wide adder: inputs [a0..], [b0..], [cin]; outputs [s0..], [cout]. *)

val kogge_stone_adder : ?style:style -> bits:int -> unit -> Netlist.t
(** Parallel-prefix adder (logarithmic depth, heavy wiring): same interface
    as {!ripple_carry_adder}. The interesting contrast workload — its many
    balanced reconvergent prefix paths behave like a small multiplier under
    sizing, where the ripple chain behaves like the paper's adder rows. *)

val array_multiplier : ?style:style -> bits:int -> unit -> Netlist.t
(** [bits x bits] array multiplier (shift-add rows of full adders); inputs
    [a*], [b*], outputs [p0 .. p(2*bits-1)]. 16 bits in [`Nand] style is the
    c6288 stand-in: ~2400 gates, deep, massively reconvergent. *)

val parity_tree : ?style:style -> width:int -> unit -> Netlist.t
(** XOR reduction tree with a complemented second output. *)

val sec_circuit : ?style:style -> data_bits:int -> unit -> Netlist.t
(** Single-error-correcting decoder in the spirit of c499/c1355: syndrome
    parity trees, per-bit match logic, and output correction XORs.
    [`Compact] approximates c499; [`Nand] approximates c1355 (per-XOR
    4-NAND expansion). With [data_bits = 16] and double-error-detect parity
    it approaches c1908's structure. *)

val alu : ?style:style -> width:int -> unit -> Netlist.t
(** Adder + logic unit (AND/OR/XOR/NOT) + 2-bit opcode mux + zero flag:
    the c880/c3540-family stand-in. *)

val priority_logic : channels:int -> unit -> Netlist.t
(** Priority grant chain with enables and an encoded grant index: the c432
    (27-channel interrupt controller) stand-in. *)

val mux_tree : select_bits:int -> unit -> Netlist.t
(** [2^select_bits]-to-1 multiplexer. *)

val comparator : width:int -> unit -> Netlist.t
(** Equality + less-than comparator (ripple borrow chain). *)

val random_dag :
  gates:int -> inputs:int -> outputs:int -> seed:int -> unit -> Netlist.t
(** Random combinational logic with realistic fanin (1-3) and locality-
    biased wiring; deterministic in [seed]. Used to pad synthetic ISCAS85
    stand-ins to published gate counts and as property-test input. *)

val c17 : unit -> Netlist.t
(** The real ISCAS85 c17 netlist (6 NAND gates) — small enough to embed and
    a convenient known-good parser/sizer fixture. *)
