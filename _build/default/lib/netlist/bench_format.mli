(** Reader and writer for the ISCAS85 / ISCAS89 [.bench] netlist format.

    The format the original benchmark suite ships in:

    {v # comment
       INPUT(G1)
       OUTPUT(G22)
       G10 = NAND(G1, G3) v}

    Gates may be declared before use textually; a two-pass parse resolves
    forward references as long as the circuit is acyclic. Flip-flop ([DFF])
    declarations are rejected — this tool sizes combinational logic. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Netlist.t
(** @raise Parse_error on malformed input. The result is validated. *)

val parse_file : string -> Netlist.t
(** Netlist named after the file's basename. *)

val to_string : Netlist.t -> string
(** Render in [.bench] syntax; [parse_string (to_string nl)] is structurally
    identical to [nl]. *)

val write_file : string -> Netlist.t -> unit
