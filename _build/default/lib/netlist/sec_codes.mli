(** Check-bit code assignment shared by the SEC generator and its tests. *)

val weight2 : checks:int -> count:int -> int array
(** The first [count] weight-2 bitmasks over [checks] bits, in ascending
    numeric order. @raise Invalid_argument if the code space is too small. *)
