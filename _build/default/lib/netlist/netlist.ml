module Vec = Minflo_util.Vec
module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo

type node_kind = Input | Gate of Gate.kind

type node = int

type node_data = { nname : string; nkind : node_kind; nfanins : int array }

type t = {
  cname : string;
  nodes : node_data Vec.t;
  by_name : (string, int) Hashtbl.t;
  mutable output_list : int list; (* reversed insertion order *)
  output_set : (int, unit) Hashtbl.t;
  mutable fanout_cache : int list array option;
}

let dummy_node = { nname = ""; nkind = Input; nfanins = [||] }

let create ?(name = "circuit") () =
  { cname = name;
    nodes = Vec.create ~dummy:dummy_node ();
    by_name = Hashtbl.create 256;
    output_list = [];
    output_set = Hashtbl.create 16;
    fanout_cache = None }

let name t = t.cname
let node_count t = Vec.length t.nodes

let add_named t data =
  if Hashtbl.mem t.by_name data.nname then
    invalid_arg (Printf.sprintf "Netlist: duplicate node name %S" data.nname);
  let id = Vec.push t.nodes data in
  Hashtbl.add t.by_name data.nname id;
  t.fanout_cache <- None;
  id

let add_input t nm = add_named t { nname = nm; nkind = Input; nfanins = [||] }

let add_gate t nm gkind fanin_list =
  let n = List.length fanin_list in
  if n < Gate.min_arity gkind then
    invalid_arg
      (Printf.sprintf "Netlist: %s gate %S needs >= %d fanins" (Gate.to_string gkind)
         nm (Gate.min_arity gkind));
  (match Gate.max_arity gkind with
  | Some m when n > m ->
    invalid_arg
      (Printf.sprintf "Netlist: %s gate %S takes <= %d fanins" (Gate.to_string gkind)
         nm m)
  | _ -> ());
  let count = node_count t in
  List.iter
    (fun f ->
      if f < 0 || f >= count then
        invalid_arg (Printf.sprintf "Netlist: gate %S has unknown fanin %d" nm f))
    fanin_list;
  add_named t { nname = nm; nkind = Gate gkind; nfanins = Array.of_list fanin_list }

let mark_output t v =
  if v < 0 || v >= node_count t then invalid_arg "Netlist.mark_output: bad node";
  if not (Hashtbl.mem t.output_set v) then begin
    Hashtbl.add t.output_set v ();
    t.output_list <- v :: t.output_list
  end

let kind t v = (Vec.get t.nodes v).nkind
let node_name t v = (Vec.get t.nodes v).nname
let find t nm = Hashtbl.find_opt t.by_name nm
let fanins t v = Array.to_list (Vec.get t.nodes v).nfanins

let gate_count t =
  Vec.fold (fun acc d -> match d.nkind with Gate _ -> acc + 1 | Input -> acc) 0 t.nodes

let input_count t =
  Vec.fold (fun acc d -> match d.nkind with Input -> acc + 1 | Gate _ -> acc) 0 t.nodes

let fanout_table t =
  match t.fanout_cache with
  | Some f -> f
  | None ->
    let f = Array.make (node_count t) [] in
    Vec.iteri
      (fun v d -> Array.iter (fun u -> f.(u) <- v :: f.(u)) d.nfanins)
      t.nodes;
    Array.iteri (fun i l -> f.(i) <- List.rev l) f;
    t.fanout_cache <- Some f;
    f

let fanouts t v = (fanout_table t).(v)
let fanout_degree t v = List.length (fanouts t v)

let inputs t =
  let acc = ref [] in
  Vec.iteri (fun v d -> if d.nkind = Input then acc := v :: !acc) t.nodes;
  List.rev !acc

let outputs t = List.rev t.output_list
let is_output t v = Hashtbl.mem t.output_set v

let iter_nodes t f = Vec.iteri (fun v _ -> f v) t.nodes

let iter_gates t f =
  Vec.iteri (fun v d -> match d.nkind with Gate _ -> f v | Input -> ()) t.nodes

let to_digraph t =
  let g = Digraph.create ~nodes_hint:(node_count t) () in
  if node_count t > 0 then ignore (Digraph.add_nodes g (node_count t));
  Vec.iteri
    (fun v d -> Array.iter (fun u -> ignore (Digraph.add_edge g u v)) d.nfanins)
    t.nodes;
  g

let topo_order t =
  (* fanins precede their gates by construction, so ids are already
     topologically ordered *)
  Array.init (node_count t) Fun.id

let levels t =
  let l = Array.make (node_count t) 0 in
  Vec.iteri
    (fun v d ->
      Array.iter (fun u -> if l.(u) + 1 > l.(v) then l.(v) <- l.(u) + 1) d.nfanins)
    t.nodes;
  l

let depth t = Array.fold_left max 0 (levels t)

let validate t =
  if input_count t = 0 then invalid_arg "Netlist.validate: no primary inputs";
  if t.output_list = [] then invalid_arg "Netlist.validate: no primary outputs";
  (* every gate's value should reach a primary output (no dead logic) and
     every non-constant gate must sit downstream of an input *)
  let g = to_digraph t in
  let reach_out = Minflo_graph.Traverse.reachable_rev g ~roots:(outputs t) in
  iter_gates t (fun v ->
      if not (Minflo_util.Bitset.mem reach_out v) then
        invalid_arg
          (Printf.sprintf "Netlist.validate: gate %S drives no primary output"
             (node_name t v)))

let simulate t input_values =
  let ins = inputs t in
  if List.length ins <> Array.length input_values then
    invalid_arg "Netlist.simulate: wrong number of input values";
  let value = Array.make (node_count t) false in
  List.iteri (fun i v -> value.(v) <- input_values.(i)) ins;
  Vec.iteri
    (fun v d ->
      match d.nkind with
      | Input -> ()
      | Gate k -> value.(v) <- Gate.eval k (Array.map (fun u -> value.(u)) d.nfanins))
    t.nodes;
  value

type stats = {
  num_inputs : int;
  num_outputs : int;
  num_gates : int;
  gates_by_kind : (Gate.kind * int) list;
  logic_depth : int;
  max_fanout : int;
  avg_fanin : float;
}

let stats t =
  let by_kind = Hashtbl.create 8 in
  let total_fanin = ref 0 in
  iter_gates t (fun v ->
      match kind t v with
      | Gate k ->
        Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k));
        total_fanin := !total_fanin + List.length (fanins t v)
      | Input -> ());
  let max_fanout = ref 0 in
  iter_nodes t (fun v -> max_fanout := max !max_fanout (fanout_degree t v));
  let ng = gate_count t in
  { num_inputs = input_count t;
    num_outputs = List.length t.output_list;
    num_gates = ng;
    gates_by_kind =
      List.filter_map
        (fun k -> Option.map (fun c -> (k, c)) (Hashtbl.find_opt by_kind k))
        Gate.all;
    logic_depth = depth t;
    max_fanout = !max_fanout;
    avg_fanin = (if ng = 0 then 0.0 else float_of_int !total_fanin /. float_of_int ng) }

let pp_stats fmt s =
  Format.fprintf fmt "inputs=%d outputs=%d gates=%d depth=%d max_fanout=%d avg_fanin=%.2f"
    s.num_inputs s.num_outputs s.num_gates s.logic_depth s.max_fanout s.avg_fanin;
  Format.fprintf fmt " [%s]"
    (String.concat ", "
       (List.map
          (fun (k, c) -> Printf.sprintf "%s:%d" (Gate.to_string k) c)
          s.gates_by_kind))
