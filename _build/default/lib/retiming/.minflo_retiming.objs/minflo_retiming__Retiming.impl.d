lib/retiming/retiming.ml: Array List Minflo_flow Minflo_graph Minflo_util Printf
