lib/retiming/retiming.mli:
