(** Retiming of synchronous circuits (Leiserson-Saxe).

    The D-phase of MINFLOTRANSIT is an FSDU-displacement LP whose machinery
    the paper borrows from retiming ([10], [13]): relabel vertices with
    integers [r], move registers (there: fictitious delay units) across
    nodes, and decide feasibility by difference constraints — the dual of a
    min-cost flow. This module closes the loop by implementing the original
    application on the same substrate:

    - {!feasible} decides whether a clock period is achievable, by the
      classic [W]/[D] matrices + Bellman-Ford difference constraints;
    - {!min_period} binary-searches the achievable periods;
    - {!retime} returns the register relabeling for a target period;
    - {!min_registers} additionally minimizes the total register count —
      an LP solved through {!Minflo_flow.Diff_lp}, i.e. by the very same
      network simplex the D-phase uses.

    Graphs must have at least one register on every directed cycle
    (synchronous legality). *)

type t
type node = int

val create : ?name:string -> unit -> t
val add_node : t -> ?delay:float -> string -> node
val add_edge : t -> node -> node -> registers:int -> unit
(** @raise Invalid_argument on negative register counts. *)

val node_count : t -> int
val edge_count : t -> int
val total_registers : t -> int

val validate : t -> unit
(** @raise Invalid_argument if some cycle carries no register (the circuit
    would not be synchronous) or a delay is negative. *)

val clock_period : t -> float
(** Longest register-free combinational path under the current register
    placement. *)

val feasible : t -> period:float -> bool

val retime : t -> period:float -> (int array, string) result
(** A legal relabeling [r] achieving the period, or [Error] if none
    exists. *)

val min_registers : t -> period:float -> (int array, string) result
(** Among the retimings achieving [period], one minimizing the total
    register count (solved as the LP dual of a min-cost flow). *)

val apply : t -> int array -> t
(** New register placement [w_r(e) = w(e) + r(dst) - r(src)].
    @raise Invalid_argument if some count would go negative. *)

val min_period : ?epsilon:float -> t -> float
(** The smallest feasible clock period (within [epsilon] relative accuracy
    via binary search over the candidate path delays). *)
