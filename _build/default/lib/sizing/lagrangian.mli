(** A Lagrangian-relaxation sizer, after Chen-Chu-Wong [8] — the exact
    method the paper compares itself against qualitatively.

    Multipliers live on the timing-graph edges and must satisfy
    flow conservation at every vertex (the KKT condition that makes the
    arrival-time variables drop out of the Lagrangian); given conserved
    multipliers, the size subproblem decomposes into per-vertex updates
    with a closed form. This implementation maintains conservation by
    construction — multipliers are built by distributing one unit of flow
    backward from each sink, weighted by edge criticality — and alternates
    multiplier re-distribution with coordinate size updates, repairing any
    infeasible iterate with a short TILOS resume.

    It is intentionally independent of the D/W machinery: a second
    optimizer whose results bracket MINFLOTRANSIT's in the ablation bench
    (see `bench/main.exe -- ablate`). *)

type options = {
  iterations : int;     (** outer multiplier updates (default 30). *)
  inner_sweeps : int;   (** coordinate sweeps per size subproblem. *)
  temperature : float;  (** softmax sharpness for criticality flows. *)
}

val default_options : options

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  outer_iterations : int;
}

val size :
  ?options:options -> Minflo_tech.Delay_model.t -> target:float -> result
(** Seeds with TILOS; returns the best feasible iterate found. [met=false]
    iff even the TILOS seed missed the target. *)
