(** Discretization of continuous sizing solutions.

    Real cell libraries offer a finite ladder of drive strengths; the
    continuous optimum of the D/W iteration must be snapped to it. Rounding
    *up* preserves every vertex's own delay budget but increases the load
    it presents upstream, so feasibility can still break; this module snaps
    and then repairs greedily, reporting the area penalty attributable to
    the grid. The `ablate` bench sweeps grid ratios — the classic result
    (penalty shrinking quickly as the ladder refines, e.g. from x2 steps to
    x1.26 steps) falls out. *)

type grid = float list
(** Available sizes, ascending. *)

val geometric : ratio:float -> min:float -> max:float -> grid
(** The usual drive ladder: [min, min*ratio, min*ratio^2, ...] up to [max]
    (with [max] always included). *)

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  area_penalty_pct : float;
      (** area increase over the continuous solution, in percent. *)
  repair_bumps : int;  (** greedy fixes needed after snapping. *)
}

val snap_up : grid -> float -> float
(** Smallest grid size >= the given size (the largest grid size if none). *)

val discretize :
  Minflo_tech.Delay_model.t ->
  target:float ->
  continuous:float array ->
  grid ->
  result
