module Delay_model = Minflo_tech.Delay_model

let weights model ~sizes ~delays =
  let n = Delay_model.num_vertices model in
  (* reverse coefficient index: incoming.(j) = [(i, a_ij)] *)
  let incoming = Array.make n [] in
  Array.iteri
    (fun i coeffs ->
      Array.iter (fun (j, a) -> incoming.(j) <- (i, a) :: incoming.(j)) coeffs)
    model.Delay_model.a_coeffs;
  let diag i =
    let d = delays.(i) -. model.Delay_model.a_self.(i) in
    if d <= 1e-12 then
      invalid_arg
        (Printf.sprintf "Sensitivity.weights: delay at vertex %d not above intrinsic" i);
    d
  in
  let y = Array.make n 0.0 in
  let blocks = Delay_model.elimination_blocks model in
  (* forward elimination order: y_j needs y_i of upstream references, which
     live in earlier blocks; in-block mutual references iterate locally *)
  Array.iter
    (fun block ->
      let stable = ref false in
      let rounds = ref 0 in
      while (not !stable) && !rounds < 500 do
        stable := true;
        incr rounds;
        Array.iter
          (fun j ->
            let acc = ref model.Delay_model.area_weight.(j) in
            List.iter (fun (i, a) -> acc := !acc +. (a *. y.(i))) incoming.(j);
            let ny = !acc /. diag j in
            if abs_float (ny -. y.(j)) > 1e-12 *. (1.0 +. abs_float ny) then begin
              y.(j) <- ny;
              stable := false
            end)
          block
      done)
    blocks;
  Array.init n (fun i -> y.(i) *. sizes.(i))
