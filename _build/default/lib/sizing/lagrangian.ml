module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta

type options = {
  iterations : int;
  inner_sweeps : int;
  temperature : float; (* subgradient step, relative to a mean stage delay *)
}

let default_options = { iterations = 40; inner_sweeps = 4; temperature = 0.5 }

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  outer_iterations : int;
}

(* Multiplier state: one lambda per timing edge plus one virtual "deadline
   edge" per sink (the a_i + d_i <= T constraint). The KKT stationarity of
   the arrival variables demands flow conservation,
   inflow(v) = outflow(v) for every non-source vertex, where outflow counts
   the virtual edge. mu_i (the price of vertex i's delay) is outflow(i). *)
type multipliers = {
  edge : float array;  (* per Digraph edge id *)
  sink : float array;  (* per vertex; only sinks meaningful *)
}

let conserve model lam =
  let g = model.Delay_model.graph in
  let order = Topo.sort g in
  Array.iter
    (fun v ->
      let inflow =
        List.fold_left (fun acc e -> acc +. lam.edge.(e)) 0.0 (Digraph.in_edges g v)
      in
      if Digraph.in_degree g v > 0 then begin
        let outflow =
          List.fold_left (fun acc e -> acc +. lam.edge.(e)) lam.sink.(v)
            (Digraph.out_edges g v)
        in
        if outflow > 0.0 then begin
          let s = inflow /. outflow in
          List.iter (fun e -> lam.edge.(e) <- lam.edge.(e) *. s) (Digraph.out_edges g v);
          lam.sink.(v) <- lam.sink.(v) *. s
        end
      end)
    order

let mu_of model lam =
  let g = model.Delay_model.graph in
  Array.init (Delay_model.num_vertices model) (fun v ->
      List.fold_left (fun acc e -> acc +. lam.edge.(e)) lam.sink.(v)
        (Digraph.out_edges g v))

(* Coordinate descent on L(x) = sum_i w_i x_i + mu_i d_i(x): the stationary
   point of x_i balances its own area + the load it presents to its fanins
   against the 1/x_i term it scales. *)
let size_subproblem options model ~mu x =
  let n = Delay_model.num_vertices model in
  let loaders = Array.make n [] in
  Array.iteri
    (fun k coeffs ->
      Array.iter (fun (j, a) -> loaders.(j) <- (k, a) :: loaders.(j)) coeffs)
    model.Delay_model.a_coeffs;
  for _ = 1 to options.inner_sweeps do
    for i = 0 to n - 1 do
      let load = ref model.Delay_model.b.(i) in
      Array.iter (fun (j, a) -> load := !load +. (a *. x.(j))) model.Delay_model.a_coeffs.(i);
      let denom = ref model.Delay_model.area_weight.(i) in
      List.iter (fun (k, a) -> denom := !denom +. (mu.(k) *. a /. x.(k))) loaders.(i);
      let xi = sqrt (mu.(i) *. !load /. !denom) in
      x.(i) <- min model.Delay_model.max_size (max model.Delay_model.min_size xi)
    done
  done

let size ?(options = default_options) model ~target =
  let seed = Tilos.size model ~target in
  if not seed.met then
    { sizes = seed.sizes;
      area = seed.area;
      cp = seed.final_cp;
      met = false;
      outer_iterations = 0 }
  else begin
    let g = model.Delay_model.graph in
    let n = Delay_model.num_vertices model in
    let lam =
      { edge = Array.make (Digraph.edge_count g) 1.0;
        sink =
          Array.init n (fun v -> if model.Delay_model.is_sink.(v) then 1.0 else 0.0) }
    in
    let x = Array.copy seed.sizes in
    let best = ref (Array.copy seed.sizes) in
    let best_area = ref seed.area in
    let outer = ref 0 in
    for _ = 1 to options.iterations do
      incr outer;
      conserve model lam;
      let mu0 = mu_of model lam in
      (* global multiplier scale: bisect so the subproblem solution lands
         at the deadline (CP is monotone decreasing in the scale) *)
      let try_scale s =
        let trial = Array.copy x in
        size_subproblem options model ~mu:(Array.map (fun m -> m *. s) mu0) trial;
        let cp = Sta.critical_path_only model ~delays:(Delay_model.delays model trial) in
        (trial, cp)
      in
      let lo = ref 1e-9 and hi = ref 1e-9 in
      let found = ref None in
      let closest = ref None in
      (try
         for _ = 1 to 120 do
           let trial, cp = try_scale !hi in
           (match !closest with
           | Some (_, best_cp) when best_cp <= cp -> ()
           | _ -> closest := Some (trial, cp));
           if cp <= target then begin
             found := Some trial;
             raise Exit
           end;
           lo := !hi;
           hi := !hi *. 2.0
         done
       with Exit -> ());
      (match !found with
      | None -> ()
      | Some _ ->
        for _ = 1 to 20 do
          let mid = sqrt (!lo *. !hi) in
          let trial, cp = try_scale mid in
          if cp <= target then begin
            hi := mid;
            found := Some trial
          end
          else lo := mid
        done);
      (* when no scale is outright feasible (CP is not monotone once sizes
         saturate), repair the closest trial greedily *)
      (match !found, !closest with
      | None, Some (trial, _) ->
        let repaired = Tilos.size ~init:trial model ~target in
        if repaired.met then found := Some repaired.sizes
      | _ -> ());
      (match !found with
      | None -> ()
      | Some trial ->
        (* exact minimum-area polish at the trial's own delay budgets *)
        let polished =
          match Wphase.solve model ~budgets:(Delay_model.delays model trial) with
          | Ok w when w.feasible -> w.sizes
          | _ -> trial
        in
        let cp = Sta.critical_path_only model ~delays:(Delay_model.delays model polished) in
        if cp <= target *. (1.0 +. 1e-9) then begin
          let area = Delay_model.area model polished in
          if area < !best_area then begin
            best_area := area;
            best := Array.copy polished
          end
        end;
        Array.blit polished 0 x 0 n);
      (* subgradient step on the current x: tight edges gain weight *)
      let delays = Delay_model.delays model x in
      let sta = Sta.analyze model ~delays ~deadline:target in
      let mean_delay = Array.fold_left ( +. ) 0.0 delays /. float_of_int n in
      let step = options.temperature in
      let bump slack =
        (* negative slack = violated/tight: grow; generous slack: shrink *)
        exp (step *. (-.slack) /. (mean_delay +. 1e-30))
      in
      Digraph.iter_edges g (fun e ->
          let i = Digraph.src g e and j = Digraph.dst g e in
          let slack = sta.Sta.required.(j) -. sta.Sta.arrival.(i) -. delays.(i) in
          lam.edge.(e) <- max 1e-12 (lam.edge.(e) *. min 8.0 (bump slack)));
      Array.iteri
        (fun v s ->
          if s then begin
            let slack = target -. (sta.Sta.arrival.(v) +. delays.(v)) in
            lam.sink.(v) <- max 1e-12 (lam.sink.(v) *. min 8.0 (bump slack))
          end)
        model.Delay_model.is_sink
    done;
    let delays = Delay_model.delays model !best in
    { sizes = !best;
      area = !best_area;
      cp = Sta.critical_path_only model ~delays;
      met = true;
      outer_iterations = !outer }
  end
