(** The D-phase: delay-budget redistribution by min-cost flow (Eq. 10).

    Sizes are held fixed. Slack is materialized as FSDUs by delay balancing,
    then redistributed by an FSDU displacement [r] chosen to maximize
    [sum_i C_i (r(Dmy(i)) - r(i))] — the first-order area decrease — subject
    to per-vertex bounds on the delay change and non-negativity of every
    displaced FSDU. The LP is a difference-constraint system, i.e. the dual
    of a min-cost network flow; it is integerized by scaling (the paper's
    power-of-10 trick) and solved with the network simplex, whose optimal
    node potentials are exactly [r]. *)

type options = {
  eta : float;
      (** trust region: [MAXdD(i) = eta * delay(i)], [MINdD(i)] symmetric
          but floored above the intrinsic delay (Theorem 3's small-step
          requirement). *)
  scale : float;  (** delay integerization factor (units per time unit). *)
  solver : [ `Simplex | `Ssp ];
  balance_mode : [ `Alap | `Asap ];
      (** which balanced configuration seeds the displacement; Theorem 1
          says the optimum is the same, making this a pure ablation knob. *)
}

val default_options : options

type outcome = {
  budgets : float array;   (** new per-vertex delay budgets. *)
  delta : float array;     (** [dD_i = budgets_i - delays_i]. *)
  objective : float;       (** predicted first-order area decrease. *)
  lp_objective : int;
      (** the exact optimum of the integerized LP — identical across
          solvers even when integer ties make [objective] differ in the
          last float digits. *)
}

val solve :
  ?options:options ->
  Minflo_tech.Delay_model.t ->
  sizes:float array ->
  delays:float array ->
  deadline:float ->
  (outcome, string) result
(** [Error] if the circuit is unsafe for the deadline or the LP turns out
    infeasible (which Theorem 2 rules out for safe inputs — it would
    indicate a bug, and the message says so). *)
