module Digraph = Minflo_graph.Digraph
module Delay_model = Minflo_tech.Delay_model
module Balance = Minflo_timing.Balance
module Sta = Minflo_timing.Sta
module Diff_lp = Minflo_flow.Diff_lp

type options = {
  eta : float;
  scale : float;
  solver : [ `Simplex | `Ssp ];
  balance_mode : [ `Alap | `Asap ];
}

let default_options =
  { eta = 0.5; scale = 1.0e4; solver = `Simplex; balance_mode = `Alap }

type outcome = {
  budgets : float array;
  delta : float array;
  objective : float;
  lp_objective : int;
}

let solve ?(options = default_options) model ~sizes ~delays ~deadline =
  let n = Delay_model.num_vertices model in
  let g = model.Delay_model.graph in
  let sta = Sta.analyze model ~delays ~deadline in
  if not (Sta.is_safe ~eps:1e-6 sta) then
    Error
      (Printf.sprintf "Dphase: circuit unsafe (CP %.4g > deadline %.4g)"
         sta.critical_path deadline)
  else begin
    let bal = Balance.balance ~mode:options.balance_mode model ~delays ~deadline in
    let weights = Sensitivity.weights model ~sizes ~delays in
    (* integerization *)
    let s = options.scale in
    let iw =
      let wmax = Array.fold_left max 1e-30 weights in
      (* supplies are kept small so cost*flow stays far from overflow *)
      let ws = 1.0e3 /. wmax in
      Array.map (fun c -> max 1 (int_of_float (Float.round (c *. ws)))) weights
    in
    (* constraint right-hand sides round DOWN (and never below 0): the
       feasible region only shrinks, so integerization can make the step
       smaller but never lets a budget exceed the true slack *)
    let q x = max 0 (int_of_float (floor (x *. s))) in
    let lp = Diff_lp.create () in
    let r = Array.init n (fun _ -> Diff_lp.var lp) in
    let rdmy = Array.init n (fun _ -> Diff_lp.var lp) in
    let ground = Diff_lp.var lp in
    (* trust-region bounds on the per-vertex delay change *)
    for i = 0 to n - 1 do
      let max_dd = options.eta *. delays.(i) in
      let head_room = delays.(i) -. (1.02 *. model.Delay_model.a_self.(i)) -. 1e-9 in
      let min_dd = -.min (options.eta *. delays.(i)) (max 0.0 head_room) in
      (* r(Dmy i) - r(i) <= MAXdD  and  r(i) - r(Dmy i) <= -MINdD *)
      Diff_lp.add_le lp rdmy.(i) r.(i) (q max_dd);
      Diff_lp.add_le lp r.(i) rdmy.(i) (q (-.min_dd));
      Diff_lp.add_objective lp rdmy.(i) iw.(i);
      Diff_lp.add_objective lp r.(i) (-iw.(i))
    done;
    (* causality: displaced FSDUs on real edges stay non-negative *)
    Digraph.iter_edges g (fun e ->
        let i = Digraph.src g e and j = Digraph.dst g e in
        (* FSDU_e + r(j) - r(Dmy i) >= 0 *)
        Diff_lp.add_le lp rdmy.(i) r.(j) (q bal.edge_fsdu.(e)));
    (* virtual input edges (ground -> source) and output edges
       (sink -> ground), with ground pinned: Corollary 1 *)
    for i = 0 to n - 1 do
      if Digraph.in_degree g i = 0 then
        Diff_lp.add_le lp ground r.(i) (q bal.source_fsdu.(i));
      if model.Delay_model.is_sink.(i) then
        Diff_lp.add_le lp rdmy.(i) ground (q bal.sink_fsdu.(i))
    done;
    match Diff_lp.solve ~solver:options.solver lp with
    | Diff_lp.Infeasible_lp ->
      Error "Dphase: displacement LP infeasible — balanced FSDUs violated (bug)"
    | Diff_lp.Unbounded_lp ->
      Error "Dphase: displacement LP unbounded — trust region missing (bug)"
    | Diff_lp.Solution { values; objective = lp_objective } ->
      let delta =
        Array.init n (fun i ->
            float_of_int (values.(rdmy.(i)) - values.(r.(i))) /. s)
      in
      let budgets = Array.init n (fun i -> delays.(i) +. delta.(i)) in
      let objective =
        Array.fold_left ( +. ) 0.0
          (Array.init n (fun i -> weights.(i) *. delta.(i)))
      in
      Ok { budgets; delta; objective; lp_objective }
  end
