(** Area-delay trade-off harness (Figure 7 and Table 1 of the paper).

    All quantities are normalized the way the paper plots them: delays as a
    fraction of the minimum-size circuit delay [Dmin], areas as a multiple
    of the minimum-size circuit area. *)

type point = {
  factor : float;         (** target / Dmin. *)
  target : float;
  tilos_area_ratio : float;    (** TILOS area / min area; [nan] if unmet. *)
  minflo_area_ratio : float;   (** MINFLOTRANSIT area / min area. *)
  saving_pct : float;          (** area saving of MINFLOTRANSIT over TILOS. *)
  tilos_met : bool;
  minflo_met : bool;
  iterations : int;
  tilos_seconds : float;
  minflo_extra_seconds : float;
      (** time of the D/W refinement on top of TILOS. *)
}

val dmin : Minflo_tech.Delay_model.t -> float
(** Delay of the minimum-size circuit. *)

val min_area : Minflo_tech.Delay_model.t -> float

val at_factor :
  ?options:Minflotransit.options ->
  Minflo_tech.Delay_model.t ->
  factor:float ->
  point
(** One Table 1 row: size with TILOS and MINFLOTRANSIT at
    [target = factor * Dmin], with wall-clock timing. *)

val curve :
  ?options:Minflotransit.options ->
  Minflo_tech.Delay_model.t ->
  factors:float list ->
  point list
(** The Figure 7 series. Infeasible factors yield points with
    [tilos_met = false]. *)
