module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta

let log_src = Logs.Src.create "minflotransit" ~doc:"MINFLOTRANSIT driver"

module Log = (val Logs.src_log log_src)

type options = {
  eta0 : float;
  eta_shrink : float;
  eta_min : float;
  max_iterations : int;
  rel_tol : float;
  solver : [ `Simplex | `Ssp ];
  tilos_bump : float;
}

let default_options =
  { eta0 = 0.5;
    eta_shrink = 0.5;
    eta_min = 1e-3;
    max_iterations = 100;
    rel_tol = 1e-4;
    solver = `Simplex;
    tilos_bump = 1.1 }

type iteration = {
  iter : int;
  area : float;
  cp : float;
  eta : float;
  predicted_gain : float;
}

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  iterations : int;
  trace : iteration list;
  tilos : Tilos.result;
  area_saving_pct : float;
}

let refine_from ?(options = default_options) model ~target ~init ~tilos =
  let x = ref (Array.copy init) in
  let area = ref (Delay_model.area model !x) in
  let eta = ref options.eta0 in
  let trace = ref [] in
  let iters = ref 0 in
  let continue = ref true in
  while !continue && !iters < options.max_iterations && !eta >= options.eta_min do
    let delays = Delay_model.delays model !x in
    let dopts = { Dphase.default_options with eta = !eta; solver = options.solver } in
    let step =
      match Dphase.solve ~options:dopts model ~sizes:!x ~delays ~deadline:target with
      | Error e ->
        Log.warn (fun m -> m "D-phase failed: %s" e);
        None
      | Ok dres -> (
        match Wphase.solve model ~budgets:dres.budgets with
        | Error e ->
          Log.warn (fun m -> m "W-phase failed: %s" e);
          None
        | Ok wres ->
          if not wres.feasible then None
          else begin
            let delays' = Delay_model.delays model wres.sizes in
            let cp' = Sta.critical_path_only model ~delays:delays' in
            if cp' > target *. (1.0 +. 1e-9) then None
            else Some (wres.sizes, Delay_model.area model wres.sizes, cp', dres.objective)
          end)
    in
    match step with
    | Some (x', area', cp', predicted) when area' < !area *. (1.0 -. options.rel_tol) ->
      incr iters;
      x := x';
      area := area';
      trace :=
        { iter = !iters; area = area'; cp = cp'; eta = !eta; predicted_gain = predicted }
        :: !trace;
      Log.debug (fun m -> m "iter %d: area %.1f cp %.4g eta %.3g" !iters area' cp' !eta)
    | Some (x', area', cp', _) when area' < !area ->
      (* small improvement: take it, then tighten the trust region *)
      incr iters;
      x := x';
      area := area';
      eta := !eta *. options.eta_shrink;
      trace :=
        { iter = !iters; area = area'; cp = cp'; eta = !eta; predicted_gain = 0.0 }
        :: !trace;
      if !eta < options.eta_min then continue := false
    | _ ->
      (* no improvement at this trust region *)
      eta := !eta *. options.eta_shrink
  done;
  let delays = Delay_model.delays model !x in
  let cp = Sta.critical_path_only model ~delays in
  let tilos_area = (tilos : Tilos.result).area in
  { sizes = !x;
    area = !area;
    cp;
    met = cp <= target *. (1.0 +. 1e-9);
    iterations = !iters;
    trace = List.rev !trace;
    tilos;
    area_saving_pct =
      (if tilos_area > 0.0 then 100.0 *. (tilos_area -. !area) /. tilos_area else 0.0) }

let optimize ?(options = default_options) model ~target =
  let tilos = Tilos.size ~bump:options.tilos_bump model ~target in
  if not tilos.met then
    { sizes = tilos.sizes;
      area = tilos.area;
      cp = tilos.final_cp;
      met = false;
      iterations = 0;
      trace = [];
      tilos;
      area_saving_pct = 0.0 }
  else refine_from ~options model ~target ~init:tilos.sizes ~tilos

let refine ?(options = default_options) model ~target ~init =
  let delays = Delay_model.delays model init in
  let cp = Sta.critical_path_only model ~delays in
  let pseudo_tilos =
    { Tilos.sizes = init;
      met = cp <= target *. (1.0 +. 1e-9);
      bumps = 0;
      final_cp = cp;
      area = Delay_model.area model init }
  in
  refine_from ~options model ~target ~init ~tilos:pseudo_tilos
