(** Empirical local-optimality probing (Theorem 3's claim, testable).

    The paper argues MINFLOTRANSIT converges to the optimum of the (convex)
    sizing problem. This module stress-tests a solution numerically: it
    draws random small perturbation directions, projects them to keep the
    circuit feasible, and reports the best area improvement found. A
    converged solution should admit (essentially) none, while a greedy
    TILOS solution of the same instance typically admits plenty — the
    `ablate` bench prints both side by side. *)

type report = {
  trials : int;
  improved : int;            (** perturbations that cut area and kept timing. *)
  best_gain_pct : float;     (** largest area reduction found, in percent. *)
  best_sizes : float array option;
}

val probe :
  ?trials:int ->
  ?magnitude:float (* relative size perturbation, default 0.05 *) ->
  seed:int ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  sizes:float array ->
  report
(** Each trial scales a random subset of sizes by factors in
    [1 +- magnitude], clamps to bounds, rejects timing violations, and
    greedily shrinks whatever slack the move opened (a W-phase pass at the
    perturbed point's own delays). *)
