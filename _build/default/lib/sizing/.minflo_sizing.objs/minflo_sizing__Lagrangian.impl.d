lib/sizing/lagrangian.ml: Array List Minflo_graph Minflo_tech Minflo_timing Tilos Wphase
