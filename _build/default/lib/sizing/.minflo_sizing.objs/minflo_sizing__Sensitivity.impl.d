lib/sizing/sensitivity.ml: Array List Minflo_tech Printf
