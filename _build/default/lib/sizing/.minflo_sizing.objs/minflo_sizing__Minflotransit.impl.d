lib/sizing/minflotransit.ml: Array Dphase List Logs Minflo_tech Minflo_timing Tilos Wphase
