lib/sizing/wphase.ml: Array List Minflo_tech Printf
