lib/sizing/lagrangian.mli: Minflo_tech
