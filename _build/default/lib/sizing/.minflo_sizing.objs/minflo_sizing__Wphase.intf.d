lib/sizing/wphase.mli: Minflo_tech Stdlib
