lib/sizing/discrete.ml: Array List Minflo_tech Minflo_timing Option
