lib/sizing/sweep.mli: Minflo_tech Minflotransit
