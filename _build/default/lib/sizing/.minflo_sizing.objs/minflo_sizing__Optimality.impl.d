lib/sizing/optimality.ml: Array Minflo_tech Minflo_timing Minflo_util Wphase
