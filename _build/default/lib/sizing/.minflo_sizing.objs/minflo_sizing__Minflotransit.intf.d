lib/sizing/minflotransit.mli: Minflo_tech Tilos
