lib/sizing/sweep.ml: List Minflo_tech Minflo_timing Minflotransit Tilos Unix
