lib/sizing/dphase.mli: Minflo_tech
