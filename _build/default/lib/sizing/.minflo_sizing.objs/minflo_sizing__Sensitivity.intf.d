lib/sizing/sensitivity.mli: Minflo_tech
