lib/sizing/dphase.ml: Array Float Minflo_flow Minflo_graph Minflo_tech Minflo_timing Printf Sensitivity
