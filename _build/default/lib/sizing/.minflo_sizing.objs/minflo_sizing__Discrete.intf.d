lib/sizing/discrete.mli: Minflo_tech
