lib/sizing/tilos.ml: Array List Minflo_graph Minflo_tech Minflo_timing
