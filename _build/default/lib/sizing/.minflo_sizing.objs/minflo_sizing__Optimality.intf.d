lib/sizing/optimality.mli: Minflo_tech
