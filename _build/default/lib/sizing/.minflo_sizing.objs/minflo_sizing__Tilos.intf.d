lib/sizing/tilos.mli: Minflo_tech
