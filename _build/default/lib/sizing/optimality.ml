module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta
module Rng = Minflo_util.Rng

type report = {
  trials : int;
  improved : int;
  best_gain_pct : float;
  best_sizes : float array option;
}

let probe ?(trials = 200) ?(magnitude = 0.05) ~seed model ~target ~sizes =
  let rng = Rng.create seed in
  let n = Delay_model.num_vertices model in
  let base_area = Delay_model.area model sizes in
  let improved = ref 0 in
  let best_gain = ref 0.0 in
  let best_sizes = ref None in
  for _ = 1 to trials do
    let x = Array.copy sizes in
    (* perturb a random subset multiplicatively *)
    let k = 1 + Rng.int rng (max 1 (n / 4)) in
    for _ = 1 to k do
      let i = Rng.int rng n in
      let f = 1.0 +. ((Rng.float rng 2.0 -. 1.0) *. magnitude) in
      x.(i) <-
        min model.Delay_model.max_size (max model.Delay_model.min_size (x.(i) *. f))
    done;
    (* let the exact W-phase shrink everything the move allows, at the
       perturbed point's own delay budgets (cannot break timing if the
       budgets themselves fit) *)
    let candidate =
      let budgets = Delay_model.delays model x in
      match Wphase.solve model ~budgets with
      | Ok w when w.feasible -> w.sizes
      | _ -> x
    in
    let cp =
      Sta.critical_path_only model ~delays:(Delay_model.delays model candidate)
    in
    if cp <= target *. (1.0 +. 1e-9) then begin
      let area = Delay_model.area model candidate in
      if area < base_area -. (1e-9 *. base_area) then begin
        incr improved;
        let gain = 100.0 *. (base_area -. area) /. base_area in
        if gain > !best_gain then begin
          best_gain := gain;
          best_sizes := Some candidate
        end
      end
    end
  done;
  { trials; improved = !improved; best_gain_pct = !best_gain; best_sizes = !best_sizes }
