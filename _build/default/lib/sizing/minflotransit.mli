(** MINFLOTRANSIT: the complete iterative-relaxation sizing tool
    (Section 2.4).

    1. Seed with a TILOS solution meeting the delay target.
    2. Alternate D-phase (redistribute delay budgets by min-cost flow) and
       W-phase (minimum sizes for those budgets) — each iteration is
       feasible and the area is non-increasing.
    3. Stop when the area improvement becomes negligible.

    The trust region [eta] bounds each D-phase's delay changes (Theorem 3's
    small-step condition); when an iteration fails to improve, [eta]
    shrinks geometrically before giving up. *)

type options = {
  eta0 : float;          (** initial trust region (default 0.5). *)
  eta_shrink : float;    (** multiplicative shrink on stall (default 0.5). *)
  eta_min : float;       (** stop once eta falls below this (default 1e-3). *)
  max_iterations : int;  (** hard cap (default 100; paper: "a few tens"). *)
  rel_tol : float;       (** relative area improvement considered negligible. *)
  solver : [ `Simplex | `Ssp ];
  tilos_bump : float;
}

val default_options : options

type iteration = {
  iter : int;
  area : float;
  cp : float;
  eta : float;
  predicted_gain : float;  (** D-phase first-order objective. *)
}

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  iterations : int;
  trace : iteration list;        (** per accepted iteration. *)
  tilos : Tilos.result;          (** the seed solution. *)
  area_saving_pct : float;       (** area saving over the TILOS seed, %. *)
}

val optimize :
  ?options:options -> Minflo_tech.Delay_model.t -> target:float -> result
(** Runs TILOS then the D/W iteration. [met = false] when even TILOS cannot
    reach the target (the returned sizes are then the TILOS attempt). *)

val refine :
  ?options:options ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  init:float array ->
  result
(** The D/W iteration from a caller-supplied feasible sizing. *)

val refine_from :
  ?options:options ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  init:float array ->
  tilos:Tilos.result ->
  result
(** Like {!refine} but records the given TILOS result as the baseline that
    [area_saving_pct] is measured against. *)
