module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta

type grid = float list

let geometric ~ratio ~min:lo ~max:hi =
  if ratio <= 1.0 then invalid_arg "Discrete.geometric: ratio must exceed 1";
  let rec build x acc = if x >= hi then List.rev (hi :: acc) else build (x *. ratio) (x :: acc) in
  build lo []

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  area_penalty_pct : float;
  repair_bumps : int;
}

let snap_up grid x =
  match List.find_opt (fun g -> g >= x -. 1e-12) grid with
  | Some g -> g
  | None -> (
    match List.rev grid with
    | g :: _ -> g
    | [] -> invalid_arg "Discrete.snap_up: empty grid")

let discretize model ~target ~continuous grid =
  if grid = [] then invalid_arg "Discrete.discretize: empty grid";
  let sorted = List.sort_uniq compare grid in
  let x = Array.map (fun v -> snap_up sorted v) continuous in
  let continuous_area = Delay_model.area model continuous in
  (* snapping up keeps each vertex's own budget but adds upstream load;
     repair greedily with a TILOS resume restricted to the grid by bumping
     to the next ladder step instead of a multiplicative factor *)
  let next_step v =
    match List.find_opt (fun g -> g > v +. 1e-12) sorted with
    | Some g -> Some (min g model.Delay_model.max_size)
    | None -> None
  in
  let bumps = ref 0 in
  let finished = ref false in
  while not !finished do
    let delays = Delay_model.delays model x in
    let sta = Sta.analyze model ~delays ~deadline:target in
    if sta.critical_path <= target then finished := true
    else begin
      let crit = Sta.critical_vertices ~eps:(1e-7 *. sta.critical_path) sta in
      (* pick the critical vertex whose step to the next ladder size buys
         the most total-violation reduction *)
      let violation () =
        let delays = Delay_model.delays model x in
        let at = Sta.arrivals model ~delays in
        let acc = ref 0.0 in
        Array.iteri
          (fun i s -> if s then acc := !acc +. max 0.0 (at.(i) +. delays.(i) -. target))
          model.Delay_model.is_sink;
        !acc
      in
      let base = violation () in
      let best = ref (-1) and best_v = ref base in
      List.iter
        (fun i ->
          match next_step x.(i) with
          | None -> ()
          | Some nx ->
            let old = x.(i) in
            x.(i) <- nx;
            let v = violation () in
            x.(i) <- old;
            if v < !best_v -. 1e-9 then begin
              best_v := v;
              best := i
            end)
        crit;
      if !best < 0 then finished := true
      else begin
        x.(!best) <- Option.get (next_step x.(!best));
        incr bumps
      end
    end
  done;
  let delays = Delay_model.delays model x in
  let cp = Sta.critical_path_only model ~delays in
  let area = Delay_model.area model x in
  { sizes = x;
    area;
    cp;
    met = cp <= target *. (1.0 +. 1e-9);
    area_penalty_pct =
      (if continuous_area > 0.0 then 100.0 *. (area -. continuous_area) /. continuous_area
       else 0.0);
    repair_bumps = !bumps }
