(** The D-phase objective weights (Section 2.3, step 2).

    Linearizing [(D - A) X = B] around the current point gives
    [dX = -(D - A)^{-1} dD X], so the total weighted area change is
    [sum_i (-C_i) dD_i] with [C_i = y_i x_i > 0] and [y] solving the
    transposed triangular system [(D - A)^T y = w] ([w] = area weights).
    Maximizing [sum C_i dD_i] is therefore the steepest first-order descent
    direction for area over the delay-budget space. *)

val weights :
  Minflo_tech.Delay_model.t -> sizes:float array -> delays:float array -> float array
(** [C_i] per vertex; all strictly positive.
    @raise Invalid_argument if some [delay <= a_ii] (singular system). *)
