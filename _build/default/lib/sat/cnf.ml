module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate

(* Tseitin: introduce a variable per gate output and clauses tying it to
   the gate function. AND/OR/NAND/NOR take the standard n-ary encodings;
   XOR/XNOR chain two-input encodings. *)

let encode solver nl ~inputs =
  let ins = Netlist.inputs nl in
  if Array.length inputs <> List.length ins then
    invalid_arg "Cnf.encode: wrong number of input variables";
  let lit = Array.make (Netlist.node_count nl) 0 in
  List.iteri (fun i v -> lit.(v) <- inputs.(i)) ins;
  let fresh () = Sat.new_var solver in
  let encode_and out ins =
    (* out <-> conj ins *)
    List.iter (fun l -> Sat.add_clause solver [ -out; l ]) ins;
    Sat.add_clause solver (out :: List.map (fun l -> -l) ins)
  in
  let encode_or out ins =
    List.iter (fun l -> Sat.add_clause solver [ out; -l ]) ins;
    Sat.add_clause solver (-out :: ins)
  in
  let encode_xor2 out a b =
    Sat.add_clause solver [ -out; a; b ];
    Sat.add_clause solver [ -out; -a; -b ];
    Sat.add_clause solver [ out; a; -b ];
    Sat.add_clause solver [ out; -a; b ]
  in
  let rec xor_chain = function
    | [] -> invalid_arg "Cnf: empty xor"
    | [ l ] -> l
    | a :: b :: rest ->
      let o = fresh () in
      encode_xor2 o a b;
      xor_chain (o :: rest)
  in
  Array.iter
    (fun v ->
      match Netlist.kind nl v with
      | Netlist.Input -> ()
      | Netlist.Gate k ->
        let fanin_lits = List.map (fun u -> lit.(u)) (Netlist.fanins nl v) in
        let out = fresh () in
        (match (k, fanin_lits) with
        | Gate.Not, [ a ] ->
          Sat.add_clause solver [ -out; -a ];
          Sat.add_clause solver [ out; a ]
        | Gate.Buf, [ a ] ->
          Sat.add_clause solver [ -out; a ];
          Sat.add_clause solver [ out; -a ]
        | Gate.And, ins -> encode_and out ins
        | Gate.Or, ins -> encode_or out ins
        | Gate.Nand, ins ->
          let inner = fresh () in
          encode_and inner ins;
          Sat.add_clause solver [ -out; -inner ];
          Sat.add_clause solver [ out; inner ]
        | Gate.Nor, ins ->
          let inner = fresh () in
          encode_or inner ins;
          Sat.add_clause solver [ -out; -inner ];
          Sat.add_clause solver [ out; inner ]
        | Gate.Xor, ins ->
          let x = xor_chain ins in
          Sat.add_clause solver [ -out; x ];
          Sat.add_clause solver [ out; -x ]
        | Gate.Xnor, ins ->
          let x = xor_chain ins in
          Sat.add_clause solver [ -out; -x ];
          Sat.add_clause solver [ out; x ]
        | (Gate.Not | Gate.Buf), _ -> invalid_arg "Cnf: arity");
        lit.(v) <- out)
    (Netlist.topo_order nl);
  lit

type verdict =
  | Equivalent
  | Differ of (string * bool) list
  | Interface_mismatch

let equivalent a b =
  let ins_a = Netlist.inputs a and ins_b = Netlist.inputs b in
  let outs_a = Netlist.outputs a and outs_b = Netlist.outputs b in
  if List.length ins_a <> List.length ins_b
     || List.length outs_a <> List.length outs_b
  then Interface_mismatch
  else begin
    let solver = Sat.create () in
    let inputs = Array.init (List.length ins_a) (fun _ -> Sat.new_var solver) in
    let la = encode solver a ~inputs in
    let lb = encode solver b ~inputs in
    (* miter: OR of output XORs must be satisfiable for a difference *)
    let diffs =
      List.map2
        (fun oa ob ->
          let d = Sat.new_var solver in
          (* d <-> la(oa) xor lb(ob) *)
          Sat.add_clause solver [ -d; la.(oa); lb.(ob) ];
          Sat.add_clause solver [ -d; -la.(oa); -lb.(ob) ];
          Sat.add_clause solver [ d; la.(oa); -lb.(ob) ];
          Sat.add_clause solver [ d; -la.(oa); lb.(ob) ];
          d)
        outs_a outs_b
    in
    Sat.add_clause solver diffs;
    match Sat.solve solver with
    | Sat.Unsat -> Equivalent
    | Sat.Sat model ->
      let names = List.map (Netlist.node_name a) ins_a in
      Differ (List.mapi (fun i n -> (n, model.(inputs.(i)))) names)
  end

let output_satisfiable nl ~output =
  let outs = Netlist.outputs nl in
  if output < 0 || output >= List.length outs then
    invalid_arg "Cnf.output_satisfiable: bad output index";
  let solver = Sat.create () in
  let inputs =
    Array.init (Netlist.input_count nl) (fun _ -> Sat.new_var solver)
  in
  let lits = encode solver nl ~inputs in
  let target = List.nth outs output in
  Sat.add_clause solver [ lits.(target) ];
  match Sat.solve solver with
  | Sat.Unsat -> None
  | Sat.Sat model ->
    let names = List.map (Netlist.node_name nl) (Netlist.inputs nl) in
    Some (List.mapi (fun i n -> (n, model.(inputs.(i)))) names)
