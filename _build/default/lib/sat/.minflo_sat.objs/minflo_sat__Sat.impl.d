lib/sat/sat.ml: Array List Minflo_util
