lib/sat/cnf.ml: Array List Minflo_netlist Sat
