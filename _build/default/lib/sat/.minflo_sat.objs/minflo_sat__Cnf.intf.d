lib/sat/cnf.mli: Minflo_netlist Sat
