lib/sat/sat.mli:
