(** A small CDCL-style SAT solver.

    DPLL search with two-watched-literal unit propagation, first-UIP
    conflict learning, and activity-ordered decisions — enough machinery to
    discharge the combinational-equivalence miters this repository builds
    (see {!Cnf}), and a second, entirely independent oracle against the BDD
    checker in the property tests.

    Literals are non-zero integers in the DIMACS convention: variable [v]
    (from {!new_var}, numbered from 1) appears positively as [v] and
    negatively as [-v]. *)

type t

val create : unit -> t

val new_var : t -> int
(** A fresh variable, returned as its positive literal. *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a disjunction of literals. The empty clause makes the instance
    trivially unsatisfiable. @raise Invalid_argument on literals naming
    unknown variables. *)

type outcome =
  | Sat of bool array
      (** model indexed by variable (entry 0 unused). *)
  | Unsat

val solve : ?assumptions:int list -> t -> outcome
(** Assumptions are temporary unit decisions; the solver can be re-solved
    with different assumptions (incremental use). *)
