(* MiniSat-style CDCL: two-watched literals, first-UIP learning, activity
   decisions, no restarts (instances here are small equivalence miters). *)

module Vec = Minflo_util.Vec

(* literal encoding: var v (>= 1) -> positive 2v, negative 2v+1 *)
let lit_of_int l = if l > 0 then 2 * l else (2 * -l) + 1
let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let lit_sign l = l land 1 = 0 (* true when positive *)

type t = {
  mutable nvars : int;
  clauses : int array Vec.t;
  mutable watches : int list array; (* per literal: clause ids watching it *)
  mutable assign : int array;       (* per var: 0 unknown, 1 true, -1 false *)
  mutable level : int array;
  mutable reason : int array;       (* clause id or -1 *)
  mutable activity : float array;
  mutable var_inc : float;
  trail : int Vec.t;                (* literals in assignment order *)
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable unsat : bool;             (* empty clause seen *)
  units : int Vec.t;                (* top-level unit literals *)
}

let create () =
  { nvars = 0;
    clauses = Vec.create ~dummy:[||] ();
    watches = Array.make 4 [];
    assign = Array.make 2 0;
    level = Array.make 2 0;
    reason = Array.make 2 (-1);
    activity = Array.make 2 0.0;
    var_inc = 1.0;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    unsat = false;
    units = Vec.create ~dummy:0 () }

let ensure_capacity t =
  let need = (2 * t.nvars) + 2 in
  if Array.length t.watches < need then begin
    let grow arr dummy =
      let a = Array.make (max need (2 * Array.length arr)) dummy in
      Array.blit arr 0 a 0 (Array.length arr);
      a
    in
    t.watches <- grow t.watches [];
    t.assign <- grow t.assign 0;
    t.level <- grow t.level 0;
    t.reason <- grow t.reason (-1);
    t.activity <- grow t.activity 0.0
  end

let new_var t =
  t.nvars <- t.nvars + 1;
  ensure_capacity t;
  t.nvars

let num_vars t = t.nvars

let value t l =
  (* 1 true, -1 false, 0 unknown, for a literal *)
  let v = t.assign.(lit_var l) in
  if v = 0 then 0 else if lit_sign l then v else -v

let add_clause t lits =
  List.iter
    (fun l ->
      let v = abs l in
      if l = 0 || v > t.nvars then invalid_arg "Sat.add_clause: bad literal")
    lits;
  (* dedupe; drop tautologies *)
  let lits = List.sort_uniq compare lits in
  let taut = List.exists (fun l -> List.mem (-l) lits) lits in
  if not taut then begin
    match lits with
    | [] -> t.unsat <- true
    | [ l ] -> ignore (Vec.push t.units (lit_of_int l))
    | _ ->
      let arr = Array.of_list (List.map lit_of_int lits) in
      let id = Vec.push t.clauses arr in
      t.watches.(arr.(0)) <- id :: t.watches.(arr.(0));
      t.watches.(arr.(1)) <- id :: t.watches.(arr.(1))
  end

let decision_level t = Vec.length t.trail_lim

let enqueue t l reason =
  (* assumes l is currently unassigned *)
  let v = lit_var l in
  t.assign.(v) <- (if lit_sign l then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  ignore (Vec.push t.trail l)

(* returns the id of a conflicting clause or -1 *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < Vec.length t.trail do
    let l = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let falsified = lit_neg l in
    let watching = t.watches.(falsified) in
    t.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | id :: rest ->
        if !conflict >= 0 then
          (* keep remaining clauses watched as before *)
          t.watches.(falsified) <- id :: rest @ t.watches.(falsified)
        else begin
          let c = Vec.get t.clauses id in
          (* normalize: falsified watch at position 1 *)
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if value t c.(0) = 1 then begin
            (* clause satisfied: keep watching *)
            t.watches.(falsified) <- id :: t.watches.(falsified);
            go rest
          end
          else begin
            (* look for a new watch *)
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < Array.length c do
              if value t c.(!k) >= 0 then begin
                let w = c.(!k) in
                c.(!k) <- c.(1);
                c.(1) <- w;
                t.watches.(w) <- id :: t.watches.(w);
                found := true
              end;
              incr k
            done;
            if !found then go rest
            else begin
              (* unit or conflicting *)
              t.watches.(falsified) <- id :: t.watches.(falsified);
              match value t c.(0) with
              | -1 ->
                conflict := id;
                go rest
              | _ ->
                enqueue t c.(0) id;
                go rest
            end
          end
        end
    in
    go watching
  done;
  !conflict

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

(* first-UIP conflict analysis; returns (learnt clause literals with the
   asserting literal first, backjump level) *)
let analyze t confl =
  let seen = Array.make (t.nvars + 1) false in
  let learnt = ref [] in
  let counter = ref 0 in
  let confl = ref confl in
  let idx = ref (Vec.length t.trail - 1) in
  let asserting = ref 0 in
  let first = ref true in
  let continue = ref true in
  while !continue do
    let c = Vec.get t.clauses !confl in
    let start = if !first then 0 else 1 in
    for k = start to Array.length c - 1 do
      let l = c.(k) in
      let v = lit_var l in
      if (not seen.(v)) && t.level.(v) > 0 then begin
        seen.(v) <- true;
        bump t v;
        if t.level.(v) >= decision_level t then incr counter
        else learnt := l :: !learnt
      end
    done;
    first := false;
    (* walk the trail backwards to the next marked literal *)
    let rec back () =
      let l = Vec.get t.trail !idx in
      decr idx;
      if seen.(lit_var l) then l else back ()
    in
    let p = back () in
    seen.(lit_var p) <- false;
    decr counter;
    if !counter = 0 then begin
      asserting := lit_neg p;
      continue := false
    end
    else confl := t.reason.(lit_var p)
  done;
  t.var_inc <- t.var_inc *. 1.05;
  let learnt = !asserting :: !learnt in
  let blevel =
    List.fold_left
      (fun acc l -> if l = !asserting then acc else max acc t.level.(lit_var l))
      0 (List.tl learnt |> fun tl -> tl)
  in
  (learnt, blevel)

let backtrack t blevel =
  if decision_level t > blevel then begin
    let bound = Vec.get t.trail_lim blevel in
    while Vec.length t.trail > bound do
      let l = Vec.pop t.trail in
      let v = lit_var l in
      t.assign.(v) <- 0;
      t.reason.(v) <- -1
    done;
    while Vec.length t.trail_lim > blevel do
      ignore (Vec.pop t.trail_lim)
    done;
    t.qhead <- Vec.length t.trail
  end

let add_learnt t learnt =
  match learnt with
  | [] -> t.unsat <- true
  | [ l ] -> enqueue t l (-1)
  | l :: _ ->
    let arr = Array.of_list learnt in
    (* second watch: a literal from the backjump level *)
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if t.level.(lit_var arr.(k)) > t.level.(lit_var arr.(!best)) then best := k
    done;
    let w = arr.(!best) in
    arr.(!best) <- arr.(1);
    arr.(1) <- w;
    let id = Vec.push t.clauses arr in
    t.watches.(arr.(0)) <- id :: t.watches.(arr.(0));
    t.watches.(arr.(1)) <- id :: t.watches.(arr.(1));
    enqueue t l id

type outcome = Sat of bool array | Unsat

exception Done of outcome

let pick_branch t =
  let best = ref 0 and best_a = ref neg_infinity in
  for v = 1 to t.nvars do
    if t.assign.(v) = 0 && t.activity.(v) > !best_a then begin
      best := v;
      best_a := t.activity.(v)
    end
  done;
  !best

let solve ?(assumptions = []) t =
  if t.unsat then Unsat
  else begin
    backtrack t 0;
    t.qhead <- 0;
    (* replay top-level units *)
    try
      Vec.iter
        (fun l ->
          match value t l with
          | 1 -> ()
          | -1 -> raise (Done Unsat)
          | _ -> enqueue t l (-1))
        t.units;
      if propagate t >= 0 then raise (Done Unsat);
      let nassume = List.length assumptions in
      List.iter
        (fun a ->
          let l = lit_of_int a in
          (match value t l with
          | 1 -> ignore (Vec.push t.trail_lim (Vec.length t.trail))
          | -1 -> raise (Done Unsat)
          | _ ->
            ignore (Vec.push t.trail_lim (Vec.length t.trail));
            enqueue t l (-1));
          if propagate t >= 0 then raise (Done Unsat))
        assumptions;
      let continue = ref true in
      while !continue do
        let confl = propagate t in
        if confl >= 0 then begin
          if decision_level t <= nassume then raise (Done Unsat);
          let learnt, blevel = analyze t confl in
          if blevel < nassume then raise (Done Unsat);
          backtrack t blevel;
          add_learnt t learnt
        end
        else begin
          let v = pick_branch t in
          if v = 0 then begin
            let model = Array.make (t.nvars + 1) false in
            for u = 1 to t.nvars do
              model.(u) <- t.assign.(u) = 1
            done;
            raise (Done (Sat model))
          end
          else begin
            ignore (Vec.push t.trail_lim (Vec.length t.trail));
            (* phase: default false *)
            enqueue t ((2 * v) + 1) (-1)
          end
        end
      done;
      Unsat
    with Done r ->
      backtrack t 0;
      r
  end
