(** Tseitin encoding of netlists and SAT-based equivalence checking.

    The classic miter construction: encode both circuits over shared input
    variables, XOR each output pair, OR the XORs, and ask the SAT solver
    whether the result can be 1 — UNSAT means the circuits agree on every
    input. Together with {!Minflo_bdd.Check} this gives two fully
    independent equivalence oracles; the test-suite plays them against each
    other. *)

val encode :
  Sat.t -> Minflo_netlist.Netlist.t -> inputs:int array -> int array
(** [encode solver nl ~inputs] adds Tseitin clauses for every gate, using
    the given variables (positive literals) for the primary inputs in
    {!Minflo_netlist.Netlist.inputs} order; returns one literal per node of
    the netlist (indexable by node id). @raise Invalid_argument if
    [inputs] has the wrong length. *)

type verdict =
  | Equivalent
  | Differ of (string * bool) list
      (** counterexample assignment, named after the first netlist's
          inputs. *)
  | Interface_mismatch

val equivalent :
  Minflo_netlist.Netlist.t -> Minflo_netlist.Netlist.t -> verdict

val output_satisfiable :
  Minflo_netlist.Netlist.t -> output:int -> (string * bool) list option
(** Can the given primary output (by position) be driven to 1? Returns a
    witness assignment if so — a tiny ATPG-flavored utility. *)
