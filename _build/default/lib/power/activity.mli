(** Switching-activity estimation by random simulation.

    The delay-balancing machinery the D-phase builds on was introduced for
    *low-power* gate resizing [13]: dynamic power is
    [~ sum over nets of activity * capacitance], and sizing changes the
    capacitances. This module estimates per-net toggle rates by Monte-Carlo
    simulation with independent uniform inputs, giving the power reports in
    the bench their activity factors. Deterministic in the seed. *)

type t = {
  toggle_rate : float array;
      (** per netlist node: expected toggles per input vector pair, in
          [0, 1] under temporal independence. *)
  one_probability : float array;  (** per node: P(value = 1). *)
  patterns : int;
}

val estimate : ?patterns:int -> seed:int -> Minflo_netlist.Netlist.t -> t
(** Default 2048 pattern pairs. *)

val exact_small : Minflo_netlist.Netlist.t -> t
(** Exhaustive enumeration (inputs <= 20): exact signal probabilities and
    toggle rates under the same independence assumption. Oracle for the
    Monte-Carlo estimator in tests. *)
