lib/power/power.ml: Activity Array Hashtbl List Minflo_netlist Minflo_tech
