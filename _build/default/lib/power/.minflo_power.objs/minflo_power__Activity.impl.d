lib/power/activity.ml: Array Minflo_netlist Minflo_util
