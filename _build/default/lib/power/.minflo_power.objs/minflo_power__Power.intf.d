lib/power/power.mli: Activity Minflo_netlist Minflo_tech
