lib/power/activity.mli: Minflo_netlist
