module Netlist = Minflo_netlist.Netlist
module Elmore = Minflo_tech.Elmore
module Gate_model = Minflo_tech.Gate_model

type report = {
  total : float;
  per_gate : float array;
}

let dynamic (tech : Minflo_tech.Tech.t) nl ~(activity : Activity.t) ~sizes =
  Netlist.validate nl;
  let v_of = Elmore.gate_vertex nl in
  let ngates = Netlist.gate_count nl in
  if Array.length sizes <> ngates then invalid_arg "Power.dynamic: wrong sizes length";
  let per_gate = Array.make ngates 0.0 in
  let model v =
    match Netlist.kind nl v with
    | Netlist.Gate k -> Gate_model.of_gate tech k ~arity:(List.length (Netlist.fanins nl v))
    | Netlist.Input -> assert false
  in
  Netlist.iter_gates nl (fun v ->
      let i = Hashtbl.find v_of v in
      let m = model v in
      let fanouts = Netlist.fanouts nl v in
      (* net capacitance: own parasitic + wire per pin + receiving pins *)
      let cap = ref (m.c_parasitic *. sizes.(i)) in
      cap := !cap +. (tech.c_wire *. float_of_int (List.length fanouts));
      if Netlist.is_output nl v then cap := !cap +. tech.c_load;
      List.iter
        (fun w ->
          let j = Hashtbl.find v_of w in
          let mw = model w in
          let pins = List.length (List.filter (fun f -> f = v) (Netlist.fanins nl w)) in
          cap := !cap +. (mw.c_input *. sizes.(j) *. float_of_int pins))
        (List.sort_uniq compare fanouts);
      per_gate.(i) <- activity.Activity.toggle_rate.(v) *. !cap);
  (* primary-input nets also switch: charge the pins they drive *)
  let input_power = ref 0.0 in
  List.iter
    (fun v ->
      let cap = ref (tech.c_wire *. float_of_int (List.length (Netlist.fanouts nl v))) in
      List.iter
        (fun w ->
          let j = Hashtbl.find v_of w in
          let mw = model w in
          let pins = List.length (List.filter (fun f -> f = v) (Netlist.fanins nl w)) in
          cap := !cap +. (mw.c_input *. sizes.(j) *. float_of_int pins))
        (List.sort_uniq compare (Netlist.fanouts nl v));
      input_power := !input_power +. (activity.Activity.toggle_rate.(v) *. !cap))
    (Netlist.inputs nl);
  { total = Array.fold_left ( +. ) !input_power per_gate; per_gate }

let min_size_baseline tech nl ~activity =
  dynamic tech nl ~activity ~sizes:(Array.make (Netlist.gate_count nl) tech.min_size)
