module Netlist = Minflo_netlist.Netlist
module Rng = Minflo_util.Rng

type t = {
  toggle_rate : float array;
  one_probability : float array;
  patterns : int;
}

let estimate ?(patterns = 2048) ~seed nl =
  Netlist.validate nl;
  let rng = Rng.create seed in
  let n = Netlist.node_count nl in
  let nin = Netlist.input_count nl in
  let ones = Array.make n 0 in
  let toggles = Array.make n 0 in
  let prev = ref None in
  for _ = 1 to patterns do
    let bits = Array.init nin (fun _ -> Rng.bool rng) in
    let values = Netlist.simulate nl bits in
    for v = 0 to n - 1 do
      if values.(v) then ones.(v) <- ones.(v) + 1
    done;
    (match !prev with
    | Some last ->
      for v = 0 to n - 1 do
        if values.(v) <> last.(v) then toggles.(v) <- toggles.(v) + 1
      done
    | None -> ());
    prev := Some values
  done;
  let fpat = float_of_int patterns in
  { toggle_rate = Array.map (fun c -> float_of_int c /. (fpat -. 1.0)) toggles;
    one_probability = Array.map (fun c -> float_of_int c /. fpat) ones;
    patterns }

let exact_small nl =
  Netlist.validate nl;
  let nin = Netlist.input_count nl in
  if nin > 20 then invalid_arg "Activity.exact_small: too many inputs";
  let n = Netlist.node_count nl in
  let ones = Array.make n 0 in
  let total = 1 lsl nin in
  for bits = 0 to total - 1 do
    let input = Array.init nin (fun i -> (bits lsr i) land 1 = 1) in
    let values = Netlist.simulate nl input in
    for v = 0 to n - 1 do
      if values.(v) then ones.(v) <- ones.(v) + 1
    done
  done;
  let p = Array.map (fun c -> float_of_int c /. float_of_int total) ones in
  (* independent consecutive vectors: toggle rate 2 p (1 - p) *)
  { toggle_rate = Array.map (fun pv -> 2.0 *. pv *. (1.0 -. pv)) p;
    one_probability = p;
    patterns = total }
