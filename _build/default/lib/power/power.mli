(** Dynamic-power reporting for sized circuits.

    [P ~ sum over driven nets of toggle_rate * C_net], with the net
    capacitance assembled from the same technology quantities as the Elmore
    model: the driver's size-scaled parasitic, each receiving pin's
    size-scaled input capacitance, wire capacitance per pin, and the output
    pad load. Reported in normalized units (fF-toggles per vector); only
    ratios are meaningful, which is all the low-power sizing story of [13]
    needs. *)

type report = {
  total : float;
  per_gate : float array;  (** indexed like the gate-sizing model's vertices. *)
}

val dynamic :
  Minflo_tech.Tech.t ->
  Minflo_netlist.Netlist.t ->
  activity:Activity.t ->
  sizes:float array ->
  report
(** [sizes] is a gate-sizing vector (one entry per gate, in
    {!Minflo_tech.Elmore.of_netlist} vertex order). *)

val min_size_baseline :
  Minflo_tech.Tech.t -> Minflo_netlist.Netlist.t -> activity:Activity.t -> report
