lib/timing/incremental.ml: Array List Minflo_graph Minflo_tech Minflo_util
