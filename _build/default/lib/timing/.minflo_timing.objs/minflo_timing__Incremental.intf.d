lib/timing/incremental.mli: Minflo_tech
