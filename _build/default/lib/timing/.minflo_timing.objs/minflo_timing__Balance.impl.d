lib/timing/balance.ml: Array Minflo_graph Minflo_tech Printf Sta
