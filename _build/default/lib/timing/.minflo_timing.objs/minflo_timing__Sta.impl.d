lib/timing/sta.ml: Array List Minflo_graph Minflo_tech
