lib/timing/balance.mli: Minflo_tech
