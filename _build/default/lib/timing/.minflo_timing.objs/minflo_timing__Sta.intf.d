lib/timing/sta.mli: Minflo_graph Minflo_tech
