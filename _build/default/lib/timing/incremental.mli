(** Incremental arrival-time maintenance under size changes.

    TILOS performs one size bump per iteration; recomputing the full STA
    each time costs [O(V+E)] even though a bump usually perturbs a small
    neighborhood. This engine keeps delays and arrival times current under
    {!set_size}: the bumped vertex and the fanins it loads get fresh
    delays, and the arrival change is propagated through a topologically
    ordered worklist that stops as soon as values settle. Equivalence with
    the batch {!Sta} is property-tested under random mutation sequences. *)

type t

val create : Minflo_tech.Delay_model.t -> sizes:float array -> t
(** The engine copies [sizes]; mutate through {!set_size} only. *)

val size : t -> int -> float

val sizes : t -> float array
(** A fresh copy of the current sizes. *)

val delay : t -> int -> float
val arrival : t -> int -> float

val finish : t -> int -> float
(** [arrival + delay]. *)

val set_size : t -> int -> float -> unit
(** Clamped to the model's bounds. *)

val critical_path : t -> float
(** Maximum finish time over sink vertices. *)

val total_violation : t -> target:float -> float
(** Sum over sinks of [max 0 (finish - target)]. *)

val critical_set : ?eps_rel:float -> t -> int list
(** Vertices on some maximal-finish path: backward traversal from the
    worst sinks along tight edges ([arrival j = finish i] within a relative
    tolerance). Equals the minimum-slack vertex set of the batch STA. *)
