(** Static timing analysis over a {!Minflo_tech.Delay_model} DAG — the
    arrival/required/slack attributes of Eq. (8).

    Conventions follow the paper: [AT(i)] is the arrival at the *input* of
    vertex [i] ([max] over fanins of their arrival plus their delay; 0 at
    sources); the circuit delay is [max (AT(i) + delay(i))]; required times
    are computed against an explicit [deadline] (pass the critical path to
    recover the paper's [CP(G)]-anchored slacks, or the timing target [T]
    for optimization); [sl(i) = RT(i) - AT(i)];
    [esl(i->j) = RT(j) - AT(i) - delay(i)]. *)

type t = {
  arrival : float array;
  required : float array;
  slack : float array;
  critical_path : float;  (** delay of the longest path, independent of the
                              deadline *)
  deadline : float;
}

val analyze :
  Minflo_tech.Delay_model.t -> delays:float array -> deadline:float -> t

val arrivals : Minflo_tech.Delay_model.t -> delays:float array -> float array
(** Arrival times only (one forward sweep). *)

val critical_path_only : Minflo_tech.Delay_model.t -> delays:float array -> float
(** Just [CP(G)] — cheaper when required times are not needed. *)

val edge_slack : t -> delays:float array -> Minflo_tech.Delay_model.t ->
  Minflo_graph.Digraph.edge -> float

val is_safe : ?eps:float -> t -> bool
(** All vertex slacks non-negative — the paper's "safe circuit". (Vertex
    slacks bound edge slacks from below here, since
    [esl(i->j) = RT(j) - AT(j') >= sl] along the max fanin.) *)

val critical_vertices : ?eps:float -> t -> int list
(** Vertices with slack within [eps] of the minimum slack. *)

val worst_path : Minflo_tech.Delay_model.t -> delays:float array -> int list
(** One maximal-delay path, source to sink, by greedy backtrace. *)
