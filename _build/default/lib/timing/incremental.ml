module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Delay_model = Minflo_tech.Delay_model
module Heap = Minflo_util.Heap

type t = {
  model : Delay_model.t;
  x : float array;
  delays : float array;
  at : float array;
  pos : int array;      (* topological position per vertex *)
  loaders : (int * float) list array; (* k loads j: (k, a_kj) reversed index *)
  queue : Heap.t;       (* worklist keyed by topo position *)
  queued : bool array;
}

let compute_delay t i =
  let acc = ref t.model.Delay_model.b.(i) in
  Array.iter (fun (j, a) -> acc := !acc +. (a *. t.x.(j))) t.model.Delay_model.a_coeffs.(i);
  t.model.Delay_model.a_self.(i) +. (!acc /. t.x.(i))

let create model ~sizes =
  let n = Delay_model.num_vertices model in
  if Array.length sizes <> n then invalid_arg "Incremental.create: wrong sizes length";
  let order = Topo.sort model.Delay_model.graph in
  let pos = Array.make n 0 in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  let loaders = Array.make n [] in
  Array.iteri
    (fun k coeffs -> Array.iter (fun (j, a) -> loaders.(j) <- (k, a) :: loaders.(j)) coeffs)
    model.Delay_model.a_coeffs;
  let t =
    { model;
      x = Array.copy sizes;
      delays = Array.make n 0.0;
      at = Array.make n 0.0;
      pos;
      loaders;
      queue = Heap.create ();
      queued = Array.make n false }
  in
  for i = 0 to n - 1 do
    t.delays.(i) <- compute_delay t i
  done;
  let g = model.Delay_model.graph in
  Array.iter
    (fun v ->
      let reach = t.at.(v) +. t.delays.(v) in
      List.iter (fun w -> if reach > t.at.(w) then t.at.(w) <- reach) (Digraph.succ g v))
    order;
  t

let size t i = t.x.(i)
let sizes t = Array.copy t.x
let delay t i = t.delays.(i)
let arrival t i = t.at.(i)
let finish t i = t.at.(i) +. t.delays.(i)

let push t v =
  if not t.queued.(v) then begin
    t.queued.(v) <- true;
    Heap.push t.queue ~key:t.pos.(v) v
  end

let settle t =
  let g = t.model.Delay_model.graph in
  let continue = ref true in
  while !continue do
    match Heap.pop_min t.queue with
    | None -> continue := false
    | Some (_, v) ->
      t.queued.(v) <- false;
      let fresh =
        List.fold_left
          (fun acc u -> max acc (t.at.(u) +. t.delays.(u)))
          0.0 (Digraph.pred g v)
      in
      if abs_float (fresh -. t.at.(v)) > 1e-12 *. (1.0 +. abs_float fresh) then begin
        t.at.(v) <- fresh;
        List.iter (fun w -> push t w) (Digraph.succ g v)
      end
  done

let set_size t i nx =
  let nx =
    min t.model.Delay_model.max_size (max t.model.Delay_model.min_size nx)
  in
  if nx <> t.x.(i) then begin
    t.x.(i) <- nx;
    let g = t.model.Delay_model.graph in
    let refresh v =
      let d = compute_delay t v in
      if d <> t.delays.(v) then begin
        t.delays.(v) <- d;
        List.iter (fun w -> push t w) (Digraph.succ g v)
      end
    in
    refresh i;
    List.iter (fun (k, _) -> refresh k) t.loaders.(i);
    settle t
  end

let critical_path t =
  let best = ref 0.0 in
  Array.iteri
    (fun v s -> if s then best := max !best (finish t v))
    t.model.Delay_model.is_sink;
  !best

let total_violation t ~target =
  let acc = ref 0.0 in
  Array.iteri
    (fun v s -> if s then acc := !acc +. max 0.0 (finish t v -. target))
    t.model.Delay_model.is_sink;
  !acc

let critical_set ?(eps_rel = 1e-9) t =
  let g = t.model.Delay_model.graph in
  let cp = critical_path t in
  let eps = eps_rel *. (1.0 +. cp) in
  let n = Delay_model.num_vertices t.model in
  let seen = Array.make n false in
  let acc = ref [] in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      acc := v :: !acc;
      List.iter
        (fun u ->
          (* edge u -> v is tight when u's finish realizes v's arrival *)
          if abs_float (t.at.(u) +. t.delays.(u) -. t.at.(v)) <= eps then visit u)
        (Digraph.pred g v)
    end
  in
  Array.iteri
    (fun v s -> if s && abs_float (finish t v -. cp) <= eps then visit v)
    t.model.Delay_model.is_sink;
  List.rev !acc
