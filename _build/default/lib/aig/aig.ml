module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate
module Vec = Minflo_util.Vec

(* Node 0 is the constant-false node; nodes 1..k are inputs; the rest are
   ANDs. Literal = 2*node + complement. *)

type lit = int

let const_false = 0
let const_true = 1
let lnot l = l lxor 1
let lit_node l = l lsr 1
let lit_compl l = l land 1 = 1

type node =
  | Const
  | Input of int
  | And of lit * lit

type t = {
  nodes : node Vec.t;
  unique : (lit * lit, lit) Hashtbl.t;
  mutable ninputs : int;
}

let create ?(hint = 1024) () =
  let t = { nodes = Vec.create ~dummy:Const (); unique = Hashtbl.create hint; ninputs = 0 } in
  ignore (Vec.push t.nodes Const);
  t

let new_input t =
  let id = Vec.push t.nodes (Input t.ninputs) in
  t.ninputs <- t.ninputs + 1;
  2 * id

let num_inputs t = t.ninputs

let num_ands t =
  Vec.fold (fun acc n -> match n with And _ -> acc + 1 | _ -> acc) 0 t.nodes

let land_ t a b =
  (* normalize order for hashing; apply local rules *)
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = lnot b then const_false
  else begin
    match Hashtbl.find_opt t.unique (a, b) with
    | Some l -> l
    | None ->
      let id = Vec.push t.nodes (And (a, b)) in
      let l = 2 * id in
      Hashtbl.add t.unique (a, b) l;
      l
  end

let lor_ t a b = lnot (land_ t (lnot a) (lnot b))
let lnand t a b = lnot (land_ t a b)
let lnor t a b = land_ t (lnot a) (lnot b)
let lxor_ t a b = lor_ t (land_ t a (lnot b)) (land_ t (lnot a) b)
let lxnor t a b = lnot (lxor_ t a b)

let land_list t = function
  | [] -> invalid_arg "Aig.land_list: empty"
  | x :: rest -> List.fold_left (land_ t) x rest

let lor_list t = function
  | [] -> invalid_arg "Aig.lor_list: empty"
  | x :: rest -> List.fold_left (lor_ t) x rest

let lxor_list t = function
  | [] -> invalid_arg "Aig.lxor_list: empty"
  | x :: rest -> List.fold_left (lxor_ t) x rest

let eval t ~inputs root =
  let cache = Hashtbl.create 64 in
  let rec node_val id =
    match Hashtbl.find_opt cache id with
    | Some v -> v
    | None ->
      let v =
        match Vec.get t.nodes id with
        | Const -> false
        | Input k ->
          if k >= Array.length inputs then invalid_arg "Aig.eval: missing input";
          inputs.(k)
        | And (a, b) -> lit_val a && lit_val b
      in
      Hashtbl.add cache id v;
      v
  and lit_val l = if lit_compl l then not (node_val (lit_node l)) else node_val (lit_node l) in
  lit_val root

let cone_size t roots =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match Vec.get t.nodes id with
      | And (a, b) ->
        incr count;
        go (lit_node a);
        go (lit_node b)
      | Const | Input _ -> ()
    end
  in
  List.iter (fun l -> go (lit_node l)) roots;
  !count

let of_netlist nl =
  Netlist.validate nl;
  let t = create ~hint:(4 * Netlist.node_count nl) () in
  let lit = Array.make (Netlist.node_count nl) const_false in
  List.iter (fun v -> lit.(v) <- new_input t) (Netlist.inputs nl);
  Array.iter
    (fun v ->
      match Netlist.kind nl v with
      | Netlist.Input -> ()
      | Netlist.Gate k ->
        let ins = List.map (fun u -> lit.(u)) (Netlist.fanins nl v) in
        lit.(v) <-
          (match k with
          | Gate.Not -> lnot (List.hd ins)
          | Gate.Buf -> List.hd ins
          | Gate.And -> land_list t ins
          | Gate.Nand -> lnot (land_list t ins)
          | Gate.Or -> lor_list t ins
          | Gate.Nor -> lnot (lor_list t ins)
          | Gate.Xor -> lxor_list t ins
          | Gate.Xnor -> lnot (lxor_list t ins)))
    (Netlist.topo_order nl);
  (t, lit)

let to_netlist ?(name = "aig") t ~input_names ~outputs =
  if List.length input_names <> t.ninputs then
    invalid_arg "Aig.to_netlist: wrong number of input names";
  let nl = Netlist.create ~name () in
  (* input k -> netlist node *)
  let input_nodes = Array.make t.ninputs (-1) in
  List.iteri (fun k nm -> input_nodes.(k) <- Netlist.add_input nl nm) input_names;
  let pos_net = Hashtbl.create 256 in (* aig node id -> netlist node *)
  let neg_net = Hashtbl.create 64 in  (* cached inverters *)
  let const_net polarity =
    (* constants are rare (degenerate outputs); realize as x AND NOT x *)
    let key = -1 in
    let base =
      match Hashtbl.find_opt pos_net key with
      | Some n -> n
      | None ->
        let a = input_nodes.(0) in
        let inv =
          Netlist.add_gate nl (Printf.sprintf "aig_cf_inv%d" (Netlist.node_count nl))
            Gate.Not [ a ]
        in
        let z =
          Netlist.add_gate nl (Printf.sprintf "aig_false%d" (Netlist.node_count nl))
            Gate.And [ a; inv ]
        in
        Hashtbl.add pos_net key z;
        z
    in
    if polarity then begin
      match Hashtbl.find_opt neg_net (-1) with
      | Some n -> n
      | None ->
        let n =
          Netlist.add_gate nl (Printf.sprintf "aig_true%d" (Netlist.node_count nl))
            Gate.Not [ base ]
        in
        Hashtbl.add neg_net (-1) n;
        n
    end
    else base
  in
  let rec net_of_node id =
    match Hashtbl.find_opt pos_net id with
    | Some n -> n
    | None ->
      let n =
        match Vec.get t.nodes id with
        | Const -> const_net false
        | Input k -> input_nodes.(k)
        | And (a, b) ->
          let na = net_of_lit a and nb = net_of_lit b in
          Netlist.add_gate nl (Printf.sprintf "aig_and%d" id) Gate.And [ na; nb ]
      in
      Hashtbl.replace pos_net id n;
      n
  and net_of_lit l =
    let id = lit_node l in
    if not (lit_compl l) then net_of_node id
    else begin
      match Hashtbl.find_opt neg_net id with
      | Some n -> n
      | None ->
        let n =
          if id = 0 then const_net true
          else
            Netlist.add_gate nl (Printf.sprintf "aig_inv%d" id) Gate.Not
              [ net_of_node id ]
        in
        Hashtbl.replace neg_net id n;
        n
    end
  in
  let used = Hashtbl.create 16 in
  List.iter
    (fun (oname, l) ->
      let n = net_of_lit l in
      (* the same net may feed several outputs or be an input: buffer the
         duplicates so every output is a distinct named node *)
      let n =
        if Hashtbl.mem used n || (match Netlist.kind nl n with Netlist.Input -> true | _ -> false)
        then Netlist.add_gate nl oname Gate.Buf [ n ]
        else begin
          Hashtbl.add used n ();
          n
        end
      in
      Netlist.mark_output nl n)
    outputs;
  Netlist.validate nl;
  nl

let strash_netlist nl =
  let t, lit = of_netlist nl in
  let input_names = List.map (Netlist.node_name nl) (Netlist.inputs nl) in
  let outputs =
    List.map (fun v -> ("out_" ^ Netlist.node_name nl v, lit.(v))) (Netlist.outputs nl)
  in
  to_netlist ~name:(Netlist.name nl ^ "_strash") t ~input_names ~outputs
