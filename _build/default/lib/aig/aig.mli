(** And-inverter graphs with structural hashing.

    The workhorse representation of modern logic synthesis: every function
    is built from two-input ANDs and edge complements, with a unique table
    so structurally identical subfunctions are created once. Conversion
    from and to {!Minflo_netlist.Netlist} gives this repository a
    structural optimizer — common-subexpression sharing plus the local
    simplifications below often shrink generated netlists noticeably —
    and the tests use BDD and SAT oracles to prove the round trip exact.

    Simplification rules applied on construction: [x & x = x],
    [x & !x = 0], [x & 1 = x], [x & 0 = 0], commutative normalization. *)

type t

type lit = int
(** A literal: node index with a complement bit. Stable across calls. *)

val create : ?hint:int -> unit -> t

val const_false : lit
val const_true : lit

val new_input : t -> lit
(** Inputs are numbered in creation order. *)

val num_inputs : t -> int

val num_ands : t -> int
(** Total AND nodes allocated (the structural size metric). *)

val lnot : lit -> lit
val land_ : t -> lit -> lit -> lit
val lor_ : t -> lit -> lit -> lit
val lxor_ : t -> lit -> lit -> lit
val lnand : t -> lit -> lit -> lit
val lnor : t -> lit -> lit -> lit
val lxnor : t -> lit -> lit -> lit
val land_list : t -> lit list -> lit
val lor_list : t -> lit list -> lit
val lxor_list : t -> lit list -> lit

val eval : t -> inputs:bool array -> lit -> bool

val cone_size : t -> lit list -> int
(** AND nodes reachable from the given roots (shared logic counted once). *)

val of_netlist : Minflo_netlist.Netlist.t -> t * lit array
(** One literal per netlist node (indexed by node id). *)

val to_netlist :
  ?name:string ->
  t ->
  input_names:string list ->
  outputs:(string * lit) list ->
  Minflo_netlist.Netlist.t
(** Materialize the cones of the given outputs as an AND/NOT netlist.
    @raise Invalid_argument if [input_names] does not cover the inputs. *)

val strash_netlist : Minflo_netlist.Netlist.t -> Minflo_netlist.Netlist.t
(** Round-trip a netlist through the AIG: structural hashing plus the local
    rules typically reduce the gate count; functional equivalence is
    guaranteed (and property-tested against both the BDD and SAT
    checkers). *)
