lib/aig/aig.mli: Minflo_netlist
