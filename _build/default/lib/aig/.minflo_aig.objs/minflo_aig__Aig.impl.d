lib/aig/aig.ml: Array Hashtbl List Minflo_netlist Minflo_util Printf
