(** Reduced ordered binary decision diagrams (ROBDDs).

    A compact canonical representation of Boolean functions: with a fixed
    variable order, two functions are equal iff their BDD node ids are
    equal. This backs the repository's *formal* equivalence checks — the
    netlist transforms (XOR expansion, NAND+INV mapping) and the synthetic
    benchmark generators are verified against their specifications exactly,
    not just on random patterns.

    The implementation is a classic hash-consed ROBDD with an
    if-then-else/apply cache. All nodes live in one {!manager}; functions
    from different managers must not be mixed. *)

type manager

type t
(** A Boolean function (a node in the manager's DAG). *)

val manager : ?cache_size:int -> unit -> manager

val bdd_true : manager -> t
val bdd_false : manager -> t

val var : manager -> int -> t
(** [var m i] is the projection function of variable [i]; the integer is
    also the variable's position in the (fixed) order. *)

val of_bool : manager -> bool -> t

(* Combinators. *)

val bdd_not : manager -> t -> t
val bdd_and : manager -> t -> t -> t
val bdd_or : manager -> t -> t -> t
val bdd_xor : manager -> t -> t -> t
val bdd_nand : manager -> t -> t -> t
val bdd_nor : manager -> t -> t -> t
val bdd_xnor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t
(** [ite m f g h] = if [f] then [g] else [h]. *)

(* Queries. *)

val equal : t -> t -> bool
(** Functional equality — constant time by canonicity. *)

val is_true : manager -> t -> bool
val is_false : manager -> t -> bool

val eval : manager -> t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val restrict : manager -> t -> int -> bool -> t
(** Cofactor with respect to one variable. *)

val support : manager -> t -> int list
(** Variables the function actually depends on, ascending. *)

val sat_count : manager -> t -> nvars:int -> float
(** Number of satisfying assignments over [nvars] variables (float to
    cope with wide functions). *)

val any_sat : manager -> t -> (int * bool) list option
(** Some satisfying partial assignment (variables not listed are free), or
    [None] for the constant-false function. *)

val node_count : manager -> int
(** Total allocated nodes (diagnostics, growth tests). *)

val size : manager -> t -> int
(** Nodes reachable from this function. *)
