(** Formal equivalence checking of netlists via BDDs.

    Two netlists are equivalent when, with primary inputs matched by
    position (the order of {!Minflo_netlist.Netlist.inputs}) and primary
    outputs matched by position, every output pair computes the same
    Boolean function. This is the verification step behind the netlist
    transforms and the benchmark generators: random simulation can miss
    corner cases, a BDD comparison cannot. *)

type verdict =
  | Equivalent
  | Inputs_mismatch of int * int
  | Outputs_mismatch of int * int
  | Differ of {
      output_index : int;
      counterexample : (string * bool) list;
          (** input assignment (by name of the first netlist) on which the
              two circuits disagree. *)
    }

val outputs_bdds : Bdd.manager -> Minflo_netlist.Netlist.t -> Bdd.t list
(** BDD per primary output; inputs are numbered by their position. *)

val equivalent : Minflo_netlist.Netlist.t -> Minflo_netlist.Netlist.t -> verdict

val check_function :
  Minflo_netlist.Netlist.t -> spec:(bool array -> bool array) -> bool
(** [check_function nl ~spec] verifies the netlist against a reference
    function exhaustively through BDD evaluation (intended for generators
    with <= ~20 inputs; larger circuits should use {!equivalent} against a
    trusted netlist). *)
