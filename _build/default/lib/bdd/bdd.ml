(* Hash-consed ROBDD. Node 0 is false, node 1 is true; every other node is
   (var, low, high) with low = cofactor at var=0. Reduction invariants:
   low <> high, and children's variables are strictly greater (terminals
   use variable max_int). *)

type t = int

type node = { nvar : int; low : int; high : int }

type manager = {
  nodes : node Minflo_util.Vec.t;
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> id *)
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let terminal_var = max_int

let manager ?(cache_size = 1 lsl 14) () =
  let m =
    { nodes = Minflo_util.Vec.create ~dummy:{ nvar = terminal_var; low = 0; high = 0 } ();
      unique = Hashtbl.create cache_size;
      ite_cache = Hashtbl.create cache_size }
  in
  (* 0 = false, 1 = true *)
  ignore (Minflo_util.Vec.push m.nodes { nvar = terminal_var; low = 0; high = 0 });
  ignore (Minflo_util.Vec.push m.nodes { nvar = terminal_var; low = 1; high = 1 });
  m

let bdd_false _ = 0
let bdd_true _ = 1
let of_bool _ b = if b then 1 else 0

let node m id = Minflo_util.Vec.get m.nodes id
let var_of m id = (node m id).nvar

let mk m nvar low high =
  if low = high then low
  else begin
    let key = (nvar, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      let id = Minflo_util.Vec.push m.nodes { nvar; low; high } in
      Hashtbl.add m.unique key id;
      id
  end

let var m i =
  if i < 0 || i >= terminal_var then invalid_arg "Bdd.var: bad index";
  mk m i 0 1

(* if-then-else: the single universal combinator *)
let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let v = min (var_of m f) (min (var_of m g) (var_of m h)) in
      let cof x =
        let n = node m x in
        if n.nvar = v then (n.low, n.high) else (x, x)
      in
      let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
      let low = ite m f0 g0 h0 in
      let high = ite m f1 g1 h1 in
      let r = mk m v low high in
      Hashtbl.add m.ite_cache key r;
      r
  end

let bdd_not m f = ite m f 0 1
let bdd_and m f g = ite m f g 0
let bdd_or m f g = ite m f 1 g
let bdd_xor m f g = ite m f (bdd_not m g) g
let bdd_nand m f g = bdd_not m (bdd_and m f g)
let bdd_nor m f g = bdd_not m (bdd_or m f g)
let bdd_xnor m f g = bdd_not m (bdd_xor m f g)

let equal (a : t) (b : t) = a = b
let is_true _ f = f = 1
let is_false _ f = f = 0

let rec eval m f assign =
  if f = 0 then false
  else if f = 1 then true
  else begin
    let n = node m f in
    eval m (if assign n.nvar then n.high else n.low) assign
  end

let rec restrict m f v b =
  if f <= 1 then f
  else begin
    let n = node m f in
    if n.nvar > v then f
    else if n.nvar = v then if b then n.high else n.low
    else mk m n.nvar (restrict m n.low v b) (restrict m n.high v b)
  end

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      let n = node m f in
      Hashtbl.replace vars n.nvar ();
      go n.low;
      go n.high
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let sat_count m f ~nvars =
  (* counts over variables 0 .. nvars-1; memoized fraction-style count *)
  let cache = Hashtbl.create 256 in
  let rec frac f =
    (* fraction of assignments satisfying f *)
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else begin
      match Hashtbl.find_opt cache f with
      | Some x -> x
      | None ->
        let n = node m f in
        let x = 0.5 *. (frac n.low +. frac n.high) in
        Hashtbl.add cache f x;
        x
    end
  in
  frac f *. (2.0 ** float_of_int nvars)

let any_sat m f =
  if f = 0 then None
  else begin
    let rec go f acc =
      if f = 1 then acc
      else begin
        let n = node m f in
        if n.high <> 0 then go n.high ((n.nvar, true) :: acc)
        else go n.low ((n.nvar, false) :: acc)
      end
    in
    Some (List.rev (go f []))
  end

let node_count m = Minflo_util.Vec.length m.nodes

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      if f > 1 then begin
        let n = node m f in
        go n.low;
        go n.high
      end
    end
  in
  go f;
  Hashtbl.length seen
