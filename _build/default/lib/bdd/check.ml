module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate

type verdict =
  | Equivalent
  | Inputs_mismatch of int * int
  | Outputs_mismatch of int * int
  | Differ of {
      output_index : int;
      counterexample : (string * bool) list;
    }

let outputs_bdds m nl =
  let value = Array.make (Netlist.node_count nl) (Bdd.bdd_false m) in
  List.iteri (fun i v -> value.(v) <- Bdd.var m i) (Netlist.inputs nl);
  Array.iter
    (fun v ->
      match Netlist.kind nl v with
      | Netlist.Input -> ()
      | Netlist.Gate k ->
        let ins = List.map (fun u -> value.(u)) (Netlist.fanins nl v) in
        let f =
          match (k, ins) with
          | (Gate.Not | Gate.Buf), [ a ] ->
            if k = Gate.Not then Bdd.bdd_not m a else a
          | Gate.And, a :: rest -> List.fold_left (Bdd.bdd_and m) a rest
          | Gate.Or, a :: rest -> List.fold_left (Bdd.bdd_or m) a rest
          | Gate.Xor, a :: rest -> List.fold_left (Bdd.bdd_xor m) a rest
          | Gate.Nand, a :: rest ->
            Bdd.bdd_not m (List.fold_left (Bdd.bdd_and m) a rest)
          | Gate.Nor, a :: rest ->
            Bdd.bdd_not m (List.fold_left (Bdd.bdd_or m) a rest)
          | Gate.Xnor, a :: rest ->
            Bdd.bdd_not m (List.fold_left (Bdd.bdd_xor m) a rest)
          | _ -> invalid_arg "Check: malformed gate"
        in
        value.(v) <- f)
    (Netlist.topo_order nl);
  List.map (fun v -> value.(v)) (Netlist.outputs nl)

let equivalent a b =
  let na = Netlist.input_count a and nb = Netlist.input_count b in
  if na <> nb then Inputs_mismatch (na, nb)
  else begin
    let oa = Netlist.outputs a and ob = Netlist.outputs b in
    if List.length oa <> List.length ob then
      Outputs_mismatch (List.length oa, List.length ob)
    else begin
      let m = Bdd.manager () in
      let fa = outputs_bdds m a and fb = outputs_bdds m b in
      let names = List.map (Netlist.node_name a) (Netlist.inputs a) in
      let rec compare_all i = function
        | [], [] -> Equivalent
        | f :: fs, g :: gs ->
          if Bdd.equal f g then compare_all (i + 1) (fs, gs)
          else begin
            let diff = Bdd.bdd_xor m f g in
            let cex =
              match Bdd.any_sat m diff with
              | None -> [] (* unreachable: diff is not constant false *)
              | Some partial ->
                List.mapi
                  (fun k name ->
                    (name, Option.value ~default:false (List.assoc_opt k partial)))
                  names
            in
            Differ { output_index = i; counterexample = cex }
          end
        | _ -> assert false
      in
      compare_all 0 (fa, fb)
    end
  end

let check_function nl ~spec =
  let m = Bdd.manager () in
  let funcs = outputs_bdds m nl in
  let n = Netlist.input_count nl in
  if n > 24 then invalid_arg "Check.check_function: too many inputs";
  let ok = ref true in
  (* compare BDDs against the spec's BDDs built from the truth recursion *)
  let rec build i assign =
    (* returns the spec outputs as BDDs by Shannon expansion over inputs *)
    if i = n then
      let outs = spec (Array.of_list (List.rev assign)) in
      Array.to_list (Array.map (fun b -> Bdd.of_bool m b) outs)
    else begin
      let low = build (i + 1) (false :: assign) in
      let high = build (i + 1) (true :: assign) in
      List.map2 (fun l h -> Bdd.ite m (Bdd.var m i) h l) low high
    end
  in
  let spec_funcs = build 0 [] in
  (try List.iter2 (fun f g -> if not (Bdd.equal f g) then ok := false) funcs spec_funcs
   with Invalid_argument _ -> ok := false);
  !ok
