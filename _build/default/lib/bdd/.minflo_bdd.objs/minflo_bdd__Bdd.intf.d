lib/bdd/bdd.mli:
