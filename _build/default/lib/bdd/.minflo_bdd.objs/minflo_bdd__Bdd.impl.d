lib/bdd/bdd.ml: Hashtbl List Minflo_util
