lib/bdd/check.ml: Array Bdd List Minflo_netlist Option
