lib/bdd/check.mli: Bdd Minflo_netlist
