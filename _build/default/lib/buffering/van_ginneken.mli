(** Timing-driven buffer insertion on RC trees (van Ginneken's algorithm).

    The delay-balancing idea the D-phase borrows from [13] ("buffer
    redistribution") has a physical counterpart: real buffers inserted into
    an interconnect tree to decouple capacitance and meet required times.
    This is the classic dynamic program — candidate
    [(capacitance, required-arrival-time)] pairs merged bottom-up with
    Pareto pruning, optionally placing a buffer at every internal point —
    which runs in [O(k^2)] over candidate counts and returns the exact
    optimum for the Elmore model.

    Self-contained: a net is described as an {!tree} of wire segments and
    sinks; technology comes from the caller (use
    {!Minflo_tech.Tech.default_130nm} and {!buffer_of_tech} for
    convenience). *)

type wire = { r : float; c : float }
(** Lumped resistance/capacitance of one segment. *)

type tree =
  | Sink of { name : string; cap : float; rat : float }
      (** leaf pin: input capacitance and required arrival time. *)
  | Wire of wire * tree
  | Branch of tree list

type buffer = {
  bname : string;
  r_drive : float;     (** output resistance. *)
  c_in : float;        (** input capacitance. *)
  t_intrinsic : float; (** intrinsic delay. *)
}

val buffer_of_tech : Minflo_tech.Tech.t -> buffer
(** A 4x inverter-pair buffer derived from the technology's unit values. *)

type candidate = {
  cap : float;  (** capacitance presented to whatever drives this point. *)
  rat : float;  (** required arrival time at this point. *)
  placements : string list;
      (** tree positions (root-relative paths like ["0/1"]) where this
          candidate places buffers, with the buffer name appended. *)
}

val solve : ?buffers:buffer list -> tree -> candidate list
(** The Pareto frontier of candidates at the tree root (capacitance
    ascending, required time ascending; no candidate dominates another).
    Buffers may be placed after every wire segment. Without buffers the
    frontier has exactly one point: the plain Elmore back-propagation. *)

val best_rat : driver_r:float -> candidate list -> (float * candidate) option
(** The candidate maximizing [rat - driver_r * cap] — the required time at
    the driver's output given its drive resistance — with the achieved
    value. [None] on an empty frontier. *)

val unbuffered_rat : driver_r:float -> tree -> float
(** Convenience: the driver-output required time with no buffering. *)
