lib/buffering/van_ginneken.mli: Minflo_tech
