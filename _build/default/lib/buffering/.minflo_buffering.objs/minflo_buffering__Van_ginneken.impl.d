lib/buffering/van_ginneken.ml: List Minflo_tech Printf
