type wire = { r : float; c : float }

type tree =
  | Sink of { name : string; cap : float; rat : float }
  | Wire of wire * tree
  | Branch of tree list

type buffer = {
  bname : string;
  r_drive : float;
  c_in : float;
  t_intrinsic : float;
}

let buffer_of_tech (tech : Minflo_tech.Tech.t) =
  (* a 4x two-stage buffer: strong drive, moderate pin load *)
  let x = 4.0 in
  { bname = "buf4";
    r_drive = max tech.r_n (tech.r_p /. tech.p_ratio) /. x;
    c_in = tech.c_gate *. (1.0 +. tech.p_ratio);
    t_intrinsic =
      2.0 *. max tech.r_n (tech.r_p /. tech.p_ratio) *. tech.c_drain
      *. (1.0 +. tech.p_ratio) }

type candidate = { cap : float; rat : float; placements : string list }

(* Pareto prune: keep candidates where smaller cap strictly buys rat.
   After sorting by (cap asc, rat desc), keep strictly increasing rat. *)
let prune cands =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.cap b.cap with 0 -> compare b.rat a.rat | c -> c)
      cands
  in
  let rec keep best = function
    | [] -> []
    | c :: rest -> if c.rat > best then c :: keep c.rat rest else keep best rest
  in
  keep neg_infinity sorted

let add_wire w cand =
  { cand with
    cap = cand.cap +. w.c;
    rat = cand.rat -. (w.r *. ((w.c /. 2.0) +. cand.cap)) }

let add_buffer ~path buffers cand =
  List.map
    (fun b ->
      { cap = b.c_in;
        rat = cand.rat -. b.t_intrinsic -. (b.r_drive *. cand.cap);
        placements = (path ^ ":" ^ b.bname) :: cand.placements })
    buffers

(* cross-merge of sibling frontiers: capacitances add, required times take
   the min; with both lists pruned the merge stays near-linear *)
let merge_branches frontiers =
  List.fold_left
    (fun acc frontier ->
      prune
        (List.concat_map
           (fun a ->
             List.map
               (fun b ->
                 { cap = a.cap +. b.cap;
                   rat = min a.rat b.rat;
                   placements = a.placements @ b.placements })
               frontier)
           acc))
    [ { cap = 0.0; rat = infinity; placements = [] } ]
    frontiers

let solve ?(buffers = []) tree =
  let rec go path = function
    | Sink { cap; rat; _ } -> [ { cap; rat; placements = [] } ]
    | Wire (w, sub) ->
      let below = go (path ^ "/w") sub in
      let here = List.map (add_wire w) below in
      (* optionally buffer right above this wire segment *)
      let buffered = List.concat_map (add_buffer ~path buffers) here in
      prune (here @ buffered)
    | Branch subs ->
      let frontiers = List.mapi (fun i s -> go (Printf.sprintf "%s/%d" path i) s) subs in
      merge_branches frontiers
  in
  prune (go "0" tree)

let best_rat ~driver_r cands =
  List.fold_left
    (fun best c ->
      let v = c.rat -. (driver_r *. c.cap) in
      match best with
      | Some (bv, _) when bv >= v -> best
      | _ -> Some (v, c))
    None cands

let unbuffered_rat ~driver_r tree =
  match solve ~buffers:[] tree with
  | [ c ] -> c.rat -. (driver_r *. c.cap)
  | cands -> (
    match best_rat ~driver_r cands with
    | Some (v, _) -> v
    | None -> invalid_arg "Van_ginneken.unbuffered_rat: empty tree")
