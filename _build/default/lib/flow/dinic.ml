module Vec = Minflo_util.Vec

type t = {
  n : int;
  (* edge i and its reverse i lxor 1 are stored adjacently *)
  eto : int Vec.t;
  ecap : int Vec.t; (* residual capacity *)
  adj : int list array; (* per node, edge ids, reversed order *)
  mutable level : int array;
  mutable iter_state : int list array;
}

let create ~num_nodes =
  { n = num_nodes;
    eto = Vec.create ~dummy:(-1) ();
    ecap = Vec.create ~dummy:0 ();
    adj = Array.make (max num_nodes 1) [];
    level = [||];
    iter_state = [||] }

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Dinic.add_edge: negative capacity";
  let e = Vec.push t.eto dst in
  ignore (Vec.push t.ecap cap);
  let r = Vec.push t.eto src in
  ignore (Vec.push t.ecap 0);
  assert (r = e + 1);
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- r :: t.adj.(dst);
  e

let bfs t source sink =
  let level = Array.make t.n (-1) in
  level.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        let v = Vec.get t.eto e in
        if level.(v) < 0 && Vec.get t.ecap e > 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  t.level <- level;
  level.(sink) >= 0

let rec dfs t u sink pushed =
  if u = sink then pushed
  else begin
    let rec try_edges () =
      match t.iter_state.(u) with
      | [] -> 0
      | e :: rest ->
        let v = Vec.get t.eto e in
        let c = Vec.get t.ecap e in
        if c > 0 && t.level.(v) = t.level.(u) + 1 then begin
          let got = dfs t v sink (min pushed c) in
          if got > 0 then begin
            Vec.set t.ecap e (c - got);
            Vec.set t.ecap (e lxor 1) (Vec.get t.ecap (e lxor 1) + got);
            got
          end
          else begin
            t.iter_state.(u) <- rest;
            try_edges ()
          end
        end
        else begin
          t.iter_state.(u) <- rest;
          try_edges ()
        end
    in
    try_edges ()
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Dinic.max_flow: source = sink";
  let total = ref 0 in
  while bfs t source sink do
    t.iter_state <- Array.copy t.adj;
    let continue = ref true in
    while !continue do
      let got = dfs t source sink max_int in
      if got = 0 then continue := false else total := !total + got
    done
  done;
  !total

let flow_on t e =
  (* flow = residual capacity accumulated on the reverse edge *)
  Vec.get t.ecap (e lxor 1)

let min_cut_side t ~source =
  let seen = Minflo_util.Bitset.create t.n in
  let q = Queue.create () in
  Minflo_util.Bitset.add seen source;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        let v = Vec.get t.eto e in
        if Vec.get t.ecap e > 0 && not (Minflo_util.Bitset.mem seen v) then begin
          Minflo_util.Bitset.add seen v;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  seen
