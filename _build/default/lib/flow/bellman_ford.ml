type graph = {
  num_nodes : int;
  arc_src : int array;
  arc_dst : int array;
  arc_weight : int array;
}

type result = Distances of int array | Negative_cycle of int list

let unreachable = max_int / 4

(* Extract a cycle from predecessor-arc pointers after detecting a relaxation
   on the n-th pass starting from arc [a0]. Walk back n steps to be certain
   we are inside the cycle, then collect arcs until the node repeats. *)
let extract_cycle g pred a0 =
  let v = ref g.arc_dst.(a0) in
  for _ = 1 to g.num_nodes do
    let a = pred.(!v) in
    if a >= 0 then v := g.arc_src.(a)
  done;
  let start = !v in
  let cycle = ref [] in
  let cur = ref start in
  let finished = ref false in
  while not !finished do
    let a = pred.(!cur) in
    cycle := a :: !cycle;
    cur := g.arc_src.(a);
    if !cur = start then finished := true
  done;
  !cycle

let run g ~sources =
  let n = g.num_nodes in
  let m = Array.length g.arc_src in
  let dist = Array.make n unreachable in
  let pred = Array.make n (-1) in
  List.iter (fun s -> dist.(s) <- 0) sources;
  let negative = ref None in
  (* n passes; a relaxation on the n-th pass proves a negative cycle *)
  let pass = ref 0 in
  let changed = ref true in
  while !changed && !negative = None do
    changed := false;
    for a = 0 to m - 1 do
      let u = g.arc_src.(a) and v = g.arc_dst.(a) in
      if dist.(u) < unreachable then begin
        let d = dist.(u) + g.arc_weight.(a) in
        if d < dist.(v) then begin
          dist.(v) <- d;
          pred.(v) <- a;
          changed := true;
          if !pass >= n then negative := Some a
        end
      end
    done;
    incr pass
  done;
  match !negative with
  | Some a -> Negative_cycle (extract_cycle g pred a)
  | None -> Distances dist

let run_all g = run g ~sources:(List.init g.num_nodes Fun.id)
