(** Bellman-Ford shortest paths with negative-cost arcs.

    Used to (a) prime SSP potentials when the network has negative costs and
    (b) decide feasibility of difference-constraint systems (a system
    [pi(u) - pi(v) <= w] is feasible iff the constraint graph has no negative
    cycle, and shortest-path distances give a feasible assignment). *)

type graph = {
  num_nodes : int;
  arc_src : int array;
  arc_dst : int array;
  arc_weight : int array;
}

type result =
  | Distances of int array
      (** Shortest distance from the (virtual multi-)source; unreachable
          nodes hold {!unreachable}. *)
  | Negative_cycle of int list
      (** Arc indices forming a negative-weight cycle. *)

val unreachable : int

val run : graph -> sources:int list -> result
(** Distances from the given sources (each at distance 0). With
    [sources = all nodes] this decides difference-constraint feasibility. *)

val run_all : graph -> result
(** [run g ~sources:(all nodes)]. *)
