(** Dinic's maximum-flow algorithm.

    Not on the critical path of the sizing tool itself, but part of the flow
    substrate: it backs feasibility checks (a transportation instance is
    feasible iff the max flow from a super-source saturates all supplies)
    and gives the test-suite an independent feasibility oracle. *)

type t

val create : num_nodes:int -> t

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Returns an edge id usable with {!flow_on}. A reverse edge of capacity 0
    is added internally. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes (and returns) the maximum flow value. May be called once. *)

val flow_on : t -> int -> int
(** Flow carried by the given edge after {!max_flow}. *)

val min_cut_side : t -> source:int -> Minflo_util.Bitset.t
(** After {!max_flow}: the source side of a minimum cut. *)
