lib/flow/diff_lp.mli:
