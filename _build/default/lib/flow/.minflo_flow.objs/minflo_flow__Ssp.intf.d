lib/flow/ssp.mli: Mcf
