lib/flow/mcf.mli:
