lib/flow/dinic.mli: Minflo_util
