lib/flow/dinic.ml: Array List Minflo_util Queue
