lib/flow/ssp.ml: Array Bellman_ford List Mcf Minflo_util Seq
