lib/flow/network_simplex.mli: Mcf
