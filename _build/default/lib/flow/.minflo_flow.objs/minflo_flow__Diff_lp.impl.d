lib/flow/diff_lp.ml: Array Hashtbl Mcf Minflo_util Network_simplex Option Printf Ssp
