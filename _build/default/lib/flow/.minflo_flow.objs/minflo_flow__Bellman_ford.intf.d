lib/flow/bellman_ford.mli:
