lib/flow/bellman_ford.ml: Array Fun List
