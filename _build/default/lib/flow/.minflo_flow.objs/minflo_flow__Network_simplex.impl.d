lib/flow/network_simplex.ml: Array List Mcf
