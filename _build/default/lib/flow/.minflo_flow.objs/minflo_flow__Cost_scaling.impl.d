lib/flow/cost_scaling.ml: Array Bellman_ford Dinic Mcf Queue Ssp
