lib/flow/mcf.ml: Array Hashtbl List Printf Seq
