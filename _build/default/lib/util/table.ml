type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let pad = widths.(i) - String.length c in
        let text =
          match t.aligns.(i) with
          | Left -> c ^ String.make pad ' '
          | Right -> String.make pad ' ' ^ c
        in
        Buffer.add_char buf ' ';
        Buffer.add_string buf text;
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells c -> line c | Rule -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
