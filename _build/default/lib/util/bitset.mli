(** Fixed-size bitsets over integer ids. *)

type t

val create : int -> t
(** [create n] is a set over the universe [\[0, n)], initially empty. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
