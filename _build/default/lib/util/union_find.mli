(** Disjoint-set forest with path compression and union by rank.

    Used by the netlist generators (net merging) and by graph sanity
    checks (weak connectivity). *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val count : t -> int
(** Number of distinct components. *)
