type t = { words : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let iter f t =
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let cardinal t = fold (fun _ n -> n + 1) t 0
