lib/util/heap.mli:
