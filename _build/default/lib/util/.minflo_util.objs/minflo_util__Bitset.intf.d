lib/util/bitset.mli:
