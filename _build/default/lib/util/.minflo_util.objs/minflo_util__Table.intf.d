lib/util/table.mli:
