lib/util/rng.mli:
