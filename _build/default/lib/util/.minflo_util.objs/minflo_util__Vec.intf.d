lib/util/vec.mli:
