lib/util/stats.mli:
