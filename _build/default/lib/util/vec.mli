(** Growable arrays.

    A thin dynamic-array layer over [Array], used throughout the flow and
    timing engines where node/arc counts are discovered incrementally. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector. [dummy] fills unused slots and is
    never observable through the API. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of range. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_array : dummy:'a -> 'a array -> 'a t
val map_to_array : ('a -> 'b) -> 'a t -> 'b array
