(** Small descriptive-statistics helpers for the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; [nan] on an empty array. *)

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. @raise Invalid_argument on an empty array. *)

val median : float array -> float

val geomean : float array -> float
(** Geometric mean of strictly positive values. *)

val sum : float array -> float
