type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable len : int;
  latest : (int, int) Hashtbl.t; (* value -> most recent key pushed *)
}

let create ?(capacity = 16) () =
  { keys = Array.make (max capacity 1) 0;
    vals = Array.make (max capacity 1) 0;
    len = 0;
    latest = Hashtbl.create 64 }

let size h = Hashtbl.length h.latest
let is_empty h = size h = 0

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0 and vals = Array.make (2 * cap) 0 in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.vals 0 vals 0 h.len;
  h.keys <- keys;
  h.vals <- vals

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j); h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k; h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.keys.(p) > h.keys.(i) then begin swap h p i; sift_up h p end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.len && h.keys.(l) < h.keys.(i) then l else i in
  let m = if r < h.len && h.keys.(r) < h.keys.(m) then r else m in
  if m <> i then begin swap h i m; sift_down h m end

let push h ~key x =
  if h.len = Array.length h.keys then grow h;
  h.keys.(h.len) <- key;
  h.vals.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1);
  Hashtbl.replace h.latest x key

let rec pop_min h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and x = h.vals.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.keys.(0) <- h.keys.(h.len);
      h.vals.(0) <- h.vals.(h.len);
      sift_down h 0
    end;
    match Hashtbl.find_opt h.latest x with
    | Some k when k = key ->
      Hashtbl.remove h.latest x;
      Some (key, x)
    | _ -> pop_min h (* stale entry superseded by a later push *)
  end

let clear h =
  h.len <- 0;
  Hashtbl.reset h.latest
