(** ASCII table rendering for the experiment harness.

    The bench executable prints paper-style tables (Table 1, Figure 7 series)
    with this module so outputs are diffable and readable in a terminal. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Inserts a horizontal rule before the next row. *)

val render : t -> string
(** Render with a box-drawing frame and padded cells. *)

val print : t -> unit
