let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let minimum xs = Array.fold_left min infinity xs
let maximum xs = Array.fold_left max neg_infinity xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let geomean xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end
