(** Deterministic pseudo-random numbers (splitmix64).

    All stochastic pieces of the repository (random circuit generation,
    property-test case generation seeds, workload shuffling) draw from this
    generator so that every experiment is reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
