(** Binary min-heap keyed by integer priorities, with support for
    decrease-key via lazy deletion.

    Used by Dijkstra in the flow library and by the TILOS candidate queue.
    Elements are integers (node/gate ids); priorities are [int] keys. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int
(** Number of live (non-superseded) entries. *)

val push : t -> key:int -> int -> unit
(** [push h ~key x] inserts [x] with priority [key]. If [x] is already
    present, the new entry supersedes the old one (lazy deletion): only the
    most recent key for [x] will ever be popped. *)

val pop_min : t -> (int * int) option
(** [pop_min h] removes and returns [(key, x)] with minimal [key], or [None]
    if the heap is empty. Stale superseded entries are skipped. *)

val clear : t -> unit
