module Gate = Minflo_netlist.Gate

type cell = {
  cname : string;
  kind : Gate.kind;
  arity : int;
  area : float;
  pin_cap : float;
  drive_res : float;
  intrinsic_delay : float;
}

type library = { lname : string; cells : cell list }

exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ---------- lexer: liberty's core token set ---------- *)

type token =
  | Ident of string
  | Str of string
  | Num of float
  | LParen | RParen | LBrace | RBrace
  | Colon | Semi | Comma

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-' || c = '+'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '\\' && !i + 1 < n && (text.[!i + 1] = '\n' || text.[!i + 1] = '\r') then begin
      (* line continuation *)
      incr line;
      i := !i + 2
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i < n && not !closed do
        if text.[!i] = '\n' then incr line;
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated comment"
    end
    else if c = '"' then begin
      let start = !i + 1 in
      i := start;
      while !i < n && text.[!i] <> '"' do
        if text.[!i] = '\n' then incr line;
        incr i
      done;
      if !i >= n then fail !line "unterminated string";
      toks := (Str (String.sub text start (!i - start)), !line) :: !toks;
      incr i
    end
    else if ident_char c then begin
      let start = !i in
      while !i < n && ident_char text.[!i] do incr i done;
      let word = String.sub text start (!i - start) in
      (match float_of_string_opt word with
      | Some f -> toks := (Num f, !line) :: !toks
      | None -> toks := (Ident word, !line) :: !toks)
    end
    else begin
      let t =
        match c with
        | '(' -> LParen | ')' -> RParen | '{' -> LBrace | '}' -> RBrace
        | ':' -> Colon | ';' -> Semi | ',' -> Comma
        | _ -> fail !line "unexpected character %C" c
      in
      toks := (t, !line) :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* ---------- generic group tree ---------- *)

type value = Vnum of float | Vstr of string

type item =
  | Attr of string * value
  | Group of group

and group = { gkind : string; gargs : string list; gitems : item list }

let parse_group_tree tokens =
  (* group := ident '(' args ')' ( '{' items '}' | ';' ) *)
  let rec parse_items acc = function
    | (RBrace, _) :: rest -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | (Ident name, _) :: (Colon, _) :: rest -> (
      match rest with
      | (Num f, _) :: tail ->
        let tail = match tail with (Semi, _) :: t -> t | t -> t in
        parse_items (Attr (name, Vnum f) :: acc) tail
      | (Str s, _) :: tail | (Ident s, _) :: tail ->
        let tail = match tail with (Semi, _) :: t -> t | t -> t in
        parse_items (Attr (name, Vstr s) :: acc) tail
      | (_, l) :: _ -> fail l "bad attribute value for %S" name
      | [] -> fail 0 "truncated attribute %S" name)
    | (Ident name, line) :: (LParen, _) :: rest ->
      let rec args acc = function
        | (RParen, _) :: tail -> (List.rev acc, tail)
        | (Ident a, _) :: tail | (Str a, _) :: tail -> args (a :: acc) tail
        | (Num f, _) :: tail -> args (Printf.sprintf "%g" f :: acc) tail
        | (Comma, _) :: tail -> args acc tail
        | (_, l) :: _ -> fail l "bad group argument in %S" name
        | [] -> fail line "unterminated group header %S" name
      in
      let gargs, tail = args [] rest in
      (match tail with
      | (LBrace, _) :: body ->
        let gitems, tail = parse_items [] body in
        parse_items (Group { gkind = name; gargs; gitems } :: acc) tail
      | (Semi, _) :: tail ->
        parse_items (Group { gkind = name; gargs; gitems = [] } :: acc) tail
      | _ -> parse_items (Group { gkind = name; gargs; gitems = [] } :: acc) tail)
    | (Semi, _) :: rest -> parse_items acc rest
    | (_, l) :: _ -> fail l "expected attribute or group"
  in
  match tokens with
  | (Ident "library", _) :: _ ->
    let items, rest = parse_items [] tokens in
    (match (items, rest) with
    | [ Group g ], [] when g.gkind = "library" -> g
    | [ Group g ], _ when g.gkind = "library" -> g
    | _ -> fail 1 "expected exactly one library group")
  | (_, l) :: _ -> fail l "file must start with 'library (...)'"
  | [] -> fail 1 "empty library file"

(* ---------- lite schema interpretation ---------- *)

let attr_num items name =
  List.find_map
    (function Attr (n, Vnum f) when n = name -> Some f | _ -> None)
    items

let attr_str items name =
  List.find_map
    (function
      | Attr (n, Vstr s) when n = name -> Some s
      | _ -> None)
    items

let interpret g =
  let cells =
    List.filter_map
      (function
        | Group c when c.gkind = "cell" -> (
          let cname = match c.gargs with a :: _ -> a | [] -> "?" in
          let fn = Option.value ~default:"" (attr_str c.gitems "function") in
          match Gate.of_string fn with
          | None -> None (* unsupported or sequential cell: skip *)
          | Some kind ->
            (* pins: count input pin groups, or take the explicit attr *)
            let pin_groups =
              List.filter_map
                (function
                  | Group p when p.gkind = "pin" -> (
                    match attr_str p.gitems "direction" with
                    | Some "input" -> Some p
                    | _ -> None)
                  | _ -> None)
                c.gitems
            in
            let arity =
              match attr_num c.gitems "pins" with
              | Some f -> int_of_float f
              | None -> max (List.length pin_groups) 1
            in
            let pin_cap =
              match attr_num c.gitems "pin_cap" with
              | Some f -> f
              | None -> (
                match pin_groups with
                | p :: _ -> Option.value ~default:1.0 (attr_num p.gitems "capacitance")
                | [] -> 1.0)
            in
            Some
              { cname;
                kind;
                arity;
                area = Option.value ~default:1.0 (attr_num c.gitems "area");
                pin_cap;
                drive_res = Option.value ~default:1000.0 (attr_num c.gitems "drive_res");
                intrinsic_delay =
                  Option.value ~default:0.0 (attr_num c.gitems "intrinsic") })
        | _ -> None)
      g.gitems
  in
  { lname = (match g.gargs with a :: _ -> a | [] -> "lib"); cells }

let parse_string text = interpret (parse_group_tree (tokenize text))

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

let to_string lib =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "library (%s) {\n" lib.lname);
  Buffer.add_string buf "  time_unit : \"1ps\";\n  capacitive_load_unit : \"1ff\";\n";
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "  cell (%s) {\n" c.cname);
      Buffer.add_string buf (Printf.sprintf "    area : %g;\n" c.area);
      Buffer.add_string buf
        (Printf.sprintf "    function : \"%s\";\n" (Gate.to_string c.kind));
      Buffer.add_string buf (Printf.sprintf "    pins : %d;\n" c.arity);
      Buffer.add_string buf (Printf.sprintf "    pin_cap : %g;\n" c.pin_cap);
      Buffer.add_string buf (Printf.sprintf "    drive_res : %g;\n" c.drive_res);
      Buffer.add_string buf (Printf.sprintf "    intrinsic : %g;\n" c.intrinsic_delay);
      Buffer.add_string buf "  }\n")
    lib.cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path lib =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string lib))

let of_tech tech =
  let mk kind arity =
    let m = Gate_model.of_gate tech kind ~arity in
    { cname =
        (if arity <= 1 then Gate.to_string kind
         else Printf.sprintf "%s%d" (Gate.to_string kind) arity);
      kind;
      arity;
      area = float_of_int m.transistors;
      pin_cap = m.c_input;
      drive_res = m.r_drive;
      intrinsic_delay = m.r_drive *. m.c_parasitic }
  in
  { lname = tech.Tech.name;
    cells =
      [ mk Gate.Not 1; mk Gate.Buf 1;
        mk Gate.Nand 2; mk Gate.Nand 3; mk Gate.Nand 4;
        mk Gate.Nor 2; mk Gate.Nor 3; mk Gate.Nor 4;
        mk Gate.And 2; mk Gate.And 3; mk Gate.And 4;
        mk Gate.Or 2; mk Gate.Or 3; mk Gate.Or 4;
        mk Gate.Xor 2; mk Gate.Xnor 2 ] }

let find lib kind ~arity =
  List.find_opt (fun c -> c.kind = kind && c.arity = arity) lib.cells

let gate_model tech lib kind ~arity =
  match find lib kind ~arity with
  | Some c ->
    { Gate_model.r_drive = c.drive_res;
      c_input = c.pin_cap;
      c_parasitic = (if c.drive_res > 0.0 then c.intrinsic_delay /. c.drive_res else 0.0);
      transistors = max 1 (int_of_float (Float.round c.area)) }
  | None -> Gate_model.of_gate tech kind ~arity
