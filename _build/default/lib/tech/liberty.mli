(** A Liberty (.lib) subset for cell libraries.

    Liberty is the de-facto interchange for cell timing data. This reader
    implements the genuine core grammar — nested
    [group (args) { attribute : value; ... }] blocks with comments and
    line continuations — and interprets a deliberately small schema
    ("liberty-lite"): per cell, an area, a logic function, a per-input pin
    capacitance, a drive resistance and an intrinsic delay. That is exactly
    the data the Elmore model consumes, so a parsed library can replace the
    built-in analytic {!Gate_model} wholesale. Unknown groups and
    attributes are skipped, so files exported from richer libraries load
    as long as the lite attributes are present. *)

type cell = {
  cname : string;
  kind : Minflo_netlist.Gate.kind;
  arity : int;
  area : float;
  pin_cap : float;          (** input capacitance per pin (fF). *)
  drive_res : float;        (** worst-case output resistance (ohm). *)
  intrinsic_delay : float;  (** parasitic (self-loading) delay term. *)
}

type library = { lname : string; cells : cell list }

exception Parse_error of { line : int; message : string }

val parse_string : string -> library
val parse_file : string -> library
val to_string : library -> string
val write_file : string -> library -> unit

val of_tech : Tech.t -> library
(** The built-in analytic models, materialized as a library: INV, BUF,
    NAND2-4, NOR2-4, AND2-4, OR2-4, XOR2, XNOR2. *)

val find : library -> Minflo_netlist.Gate.kind -> arity:int -> cell option

val gate_model :
  Tech.t -> library -> Minflo_netlist.Gate.kind -> arity:int -> Gate_model.t
(** Model lookup used by {!Elmore.of_netlist_with}; falls back to the
    analytic formulas of {!Gate_model.of_gate} for cells the library lacks
    (so a partial library still sizes every circuit). *)
