module Netlist = Minflo_netlist.Netlist
module Digraph = Minflo_graph.Digraph

let gate_vertex nl =
  let map = Hashtbl.create (Netlist.node_count nl) in
  let next = ref 0 in
  Netlist.iter_gates nl (fun v ->
      Hashtbl.add map v !next;
      incr next);
  map

let of_netlist_with
    ~(model_of : Minflo_netlist.Gate.kind -> arity:int -> Gate_model.t)
    (tech : Tech.t) nl =
  Netlist.validate nl;
  let v_of = gate_vertex nl in
  let n = Netlist.gate_count nl in
  let graph = Digraph.create ~nodes_hint:n () in
  if n > 0 then ignore (Digraph.add_nodes graph n);
  let a_self = Array.make n 0.0 in
  let a_acc : (int, float) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let b = Array.make n 0.0 in
  let area_weight = Array.make n 1.0 in
  let is_sink = Array.make n false in
  let labels = Array.make n "" in
  let model v =
    match Netlist.kind nl v with
    | Netlist.Gate k -> model_of k ~arity:(List.length (Netlist.fanins nl v))
    | Netlist.Input -> assert false
  in
  Netlist.iter_gates nl (fun v ->
      let i = Hashtbl.find v_of v in
      let m = model v in
      labels.(i) <- Netlist.node_name nl v;
      area_weight.(i) <- float_of_int m.transistors;
      a_self.(i) <- m.r_drive *. m.c_parasitic;
      is_sink.(i) <- Netlist.is_output nl v;
      let fanouts = Netlist.fanouts nl v in
      (* wire capacitance scales with the number of pins driven *)
      b.(i) <- m.r_drive *. (tech.c_wire *. float_of_int (List.length fanouts));
      if Netlist.is_output nl v then b.(i) <- b.(i) +. (m.r_drive *. tech.c_load);
      List.iter
        (fun w ->
          (* one a_ij term per connected pin: a gate reading this net on two
             pins loads it twice (fanouts lists distinct gates here) *)
          let j = Hashtbl.find v_of w in
          let mw = model w in
          let pins =
            List.length (List.filter (fun f -> f = v) (Netlist.fanins nl w))
          in
          let add = m.r_drive *. mw.c_input *. float_of_int pins in
          Hashtbl.replace a_acc.(i) j
            (add +. Option.value ~default:0.0 (Hashtbl.find_opt a_acc.(i) j));
          if Digraph.find_edge graph i j = None then ignore (Digraph.add_edge graph i j))
        (List.sort_uniq compare fanouts);
      (* gates also load the primary inputs driving them, but PIs carry no
         sizing variable: nothing to record on that side *)
      ignore (Netlist.fanins nl v));
  let a_coeffs =
    Array.map
      (fun h -> Array.of_seq (Seq.map (fun (j, a) -> (j, a)) (Hashtbl.to_seq h)))
      a_acc
  in
  let model : Delay_model.t =
    { graph; a_self; a_coeffs; b; area_weight; is_sink;
      block = Array.init n Fun.id; labels;
      min_size = tech.min_size; max_size = tech.max_size }
  in
  Delay_model.validate model;
  model

let of_netlist tech nl = of_netlist_with ~model_of:(Gate_model.of_gate tech) tech nl

let with_wires (tech : Tech.t) nl =
  Netlist.validate nl;
  let v_of = gate_vertex nl in
  let ngates = Netlist.gate_count nl in
  let n = 2 * ngates in
  (* gate k's wire is vertex ngates + k *)
  let wire_of v = ngates + Hashtbl.find v_of v in
  let graph = Digraph.create ~nodes_hint:n () in
  if n > 0 then ignore (Digraph.add_nodes graph n);
  let a_self = Array.make n 0.0 in
  let a_acc : (int, float) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let b = Array.make n 0.0 in
  let area_weight = Array.make n 1.0 in
  let is_sink = Array.make n false in
  let labels = Array.make n "" in
  let add_a i j x =
    Hashtbl.replace a_acc.(i) j
      (x +. Option.value ~default:0.0 (Hashtbl.find_opt a_acc.(i) j))
  in
  let gmodel v =
    match Netlist.kind nl v with
    | Netlist.Gate k -> Gate_model.of_gate tech k ~arity:(List.length (Netlist.fanins nl v))
    | Netlist.Input -> assert false
  in
  Netlist.iter_gates nl (fun v ->
      let i = Hashtbl.find v_of v in
      let w = wire_of v in
      let m = gmodel v in
      let fanouts = Netlist.fanouts nl v in
      let pins =
        List.length fanouts + if Netlist.is_output nl v then 1 else 0
      in
      let pins_f = float_of_int pins in
      labels.(i) <- Netlist.node_name nl v;
      labels.(w) <- Netlist.node_name nl v ^ ".wire";
      area_weight.(i) <- float_of_int m.transistors;
      area_weight.(w) <- tech.wire_area *. pins_f;
      (* driver gate: drives its parasitic, the wire's width-dependent
         capacitance, and the receiver pins through the wire *)
      a_self.(i) <- m.r_drive *. m.c_parasitic;
      add_a i w (m.r_drive *. tech.c_wire *. pins_f);
      ignore (Digraph.add_edge graph i w);
      if Netlist.is_output nl v then b.(w) <- tech.r_wire *. pins_f *. tech.c_load;
      (* wire vertex: distributed RC — its resistance sees half its own
         capacitance plus everything downstream *)
      a_self.(w) <- tech.r_wire *. pins_f *. (tech.c_wire *. pins_f /. 2.0);
      is_sink.(w) <- Netlist.is_output nl v;
      List.iter
        (fun recv ->
          let j = Hashtbl.find v_of recv in
          let mj = gmodel recv in
          let npins =
            List.length (List.filter (fun f -> f = v) (Netlist.fanins nl recv))
          in
          let pin_cap = mj.c_input *. float_of_int npins in
          add_a i j (m.r_drive *. pin_cap);
          add_a w j (tech.r_wire *. pins_f *. pin_cap);
          if Digraph.find_edge graph w j = None then ignore (Digraph.add_edge graph w j))
        (List.sort_uniq compare fanouts);
      (* the driver's resistance also charges the pad load behind the wire *)
      if Netlist.is_output nl v then b.(i) <- b.(i) +. (m.r_drive *. tech.c_load));
  let a_coeffs = Array.map (fun h -> Array.of_seq (Hashtbl.to_seq h)) a_acc in
  let model : Delay_model.t =
    { graph; a_self; a_coeffs; b; area_weight; is_sink;
      block = Array.init n Fun.id; labels;
      min_size = tech.min_size; max_size = tech.max_size }
  in
  Delay_model.validate model;
  model
