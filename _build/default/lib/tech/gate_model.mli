(** Electrical model of a logic gate for the gate-sizing special case.

    Each gate is characterized, logical-effort style, by a worst-case drive
    resistance, a per-input gate capacitance, and a parasitic output
    capacitance, all for a unit-sized instance; sizing a gate by [x]
    divides its resistance by [x] and multiplies its capacitances by [x].
    These are exactly the quantities that appear as the Elmore coefficients
    of Section 2.3 (Eq. 4). *)

type t = {
  r_drive : float;
      (** worst-case output resistance of a unit-sized instance (ohm):
          max of the NMOS series stack and the PMOS series stack. *)
  c_input : float;
      (** capacitance presented by one input pin at unit size (fF). *)
  c_parasitic : float;
      (** junction capacitance on the output node at unit size (fF). *)
  transistors : int;
      (** device count — the area weight of the gate. *)
}

val of_gate : Tech.t -> Minflo_netlist.Gate.kind -> arity:int -> t
