(** Gate-sizing Elmore coefficient extraction (the paper's evaluated mode).

    One timing vertex per gate. A gate [i] of drive resistance [R_i / x_i]
    charges its own parasitic ([a_ii = R C_par]), the input capacitance of
    each fanout gate [j] ([a_ij = R C_in(j)], one term per connected pin),
    wire capacitance per fanout branch and the fixed primary-output load
    ([b_i]) — exactly Eq. (4) of the paper. *)

val of_netlist : Tech.t -> Minflo_netlist.Netlist.t -> Delay_model.t
(** The returned model's vertex ids equal gate *ranks*: the k-th gate in
    netlist node order is vertex k (primary inputs carry no vertex). Use
    {!gate_vertex} to map. *)

val gate_vertex : Minflo_netlist.Netlist.t -> (int, int) Hashtbl.t
(** Netlist node id -> timing vertex id, for gate nodes. *)

val of_netlist_with :
  model_of:(Minflo_netlist.Gate.kind -> arity:int -> Gate_model.t) ->
  Tech.t ->
  Minflo_netlist.Netlist.t ->
  Delay_model.t
(** Like {!of_netlist} but with caller-supplied per-gate electrical models
    — e.g. from a parsed {!Liberty} library. The [Tech.t] still provides
    wire and output-load values. *)

val with_wires : Tech.t -> Minflo_netlist.Netlist.t -> Delay_model.t
(** Simultaneous gate and wire sizing (Section 2.1): every gate-output net
    gets its own sized vertex, inserted between the driver and its
    receivers. Widening a wire by [x] divides its resistance and multiplies
    its capacitance by [x] — the same simple-monotonic form as a gate, so
    the whole D/W machinery applies unchanged. Vertices [0 .. G-1] are the
    gates (as in {!of_netlist}); vertex [G + k] is the wire of the k-th
    gate. The wire of a primary-output net carries the pad load and becomes
    the timing sink. *)
