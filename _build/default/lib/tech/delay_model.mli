(** The sizing problem in the paper's canonical coefficient form.

    Every vertex [i] of the timing DAG carries a size variable [x_i] and a
    delay that admits the simple monotonic decomposition of Definition 1/2:

    {v delay_i(x) * x_i = a_ii * x_i + sum_{j<>i} a_ij * x_j + b_i v}

    equivalently [delay_i = a_self_i + (sum a_ij x_j + b_i) / x_i], with all
    coefficients non-negative and every [j] with [a_ij <> 0] strictly
    downstream of [i] — the (block) upper-triangular structure of (D - A)
    from Section 2.3. Both the gate-sizing instance ({!Elmore}) and the
    transistor-sizing instance ({!Transistor}) produce this type; STA, the
    D-phase, the W-phase and TILOS all consume it, so the whole optimizer is
    agnostic to which sizing granularity is in effect. *)

type t = {
  graph : Minflo_graph.Digraph.t;
      (** signal-flow DAG over the sized vertices. *)
  a_self : float array;      (** [a_ii]: size-independent intrinsic delay. *)
  a_coeffs : (int * float) array array;
      (** per vertex, the [(j, a_ij)] pairs with [j <> i]. *)
  b : float array;           (** fixed load term per vertex. *)
  area_weight : float array; (** objective weight of [x_i] (device count). *)
  is_sink : bool array;      (** vertex constrained by the timing spec [T]. *)
  block : int array;
      (** block id per vertex ((D - A) is *block* upper triangular: gate
          sizing has one vertex per block; transistor sizing groups the
          transistors of a gate, whose parallel devices are mutually
          incomparable, into one block). *)
  labels : string array;
  min_size : float;
  max_size : float;
}

val num_vertices : t -> int

val delay : t -> float array -> int -> float
(** [delay m x i]: Elmore delay of vertex [i] under sizes [x]. *)

val delays : t -> float array -> float array

val area : t -> float array -> float
(** Weighted area [sum w_i * x_i]. *)

val uniform_sizes : t -> float -> float array

val elimination_blocks : t -> int array array
(** The blocks (vertex groups) in topological order of the block-quotient of
    the union of the timing graph and the coefficient dependencies — the
    order in which backward substitution on [(D - A) X = B] proceeds
    (Section 2.3). @raise Invalid_argument if the quotient has a cycle,
    i.e. the model is not block upper triangular. *)

val validate : t -> unit
(** Checks coefficient non-negativity, block upper-triangularity (via
    {!elimination_blocks}), DAG-ness of the timing graph, and at least one
    sink. @raise Invalid_argument on violation. *)

val check_sizes : t -> float array -> (unit, string) result
(** Bounds check for a candidate sizing vector. *)
