(** True transistor sizing: the per-transistor DAG of Figures 1-2.

    Every static CMOS gate is expanded into its pullup (PMOS) and pulldown
    (NMOS) networks with one timing vertex per transistor. Within a series
    stack, edges run from the supply-side transistor to the output-side
    transistor, so a root-to-leaf path accumulates exactly the Elmore delay
    of the worst charging/discharging path (Eq. 2-3); across a wire, edges
    run from the driver's NMOS (PMOS) leaves to the roots of the receiving
    gate's PMOS (NMOS) network that reach the connected transistor
    (Section 2.2). All transistors of a gate share one block, giving the
    block-upper-triangular (D - A) the paper proves for transistor sizing.

    Supported gate kinds: NOT, BUF, NAND, NOR. Run
    {!Minflo_netlist.Transform.to_nand_inv} first for anything else. *)

type network =
  | Device of int          (** leaf transistor, labelled by input pin index *)
  | Series of network list
  | Parallel of network list

val topology : Minflo_netlist.Gate.kind -> arity:int -> network * network
(** [(pulldown, pullup)] for the given gate.
    @raise Invalid_argument for unsupported kinds (AND/OR/XOR/XNOR). *)

val of_netlist : Tech.t -> Minflo_netlist.Netlist.t -> Delay_model.t
(** Transistor-granularity sizing problem. Vertex labels are
    ["<gate>/<N|P><pin>"]. *)

val vertices_of_gate : Tech.t -> Minflo_netlist.Netlist.t -> int -> int list
(** Timing-vertex ids belonging to a netlist gate node (for reporting). *)
