module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate
module Digraph = Minflo_graph.Digraph

type network = Device of int | Series of network list | Parallel of network list

let topology kind ~arity =
  let devices = List.init arity (fun p -> Device p) in
  match kind with
  | Gate.Not | Gate.Buf ->
    (* BUF is modelled as a single restoring stage *)
    (Device 0, Device 0)
  | Gate.Nand -> (Series devices, Parallel devices)
  | Gate.Nor -> (Parallel devices, Series devices)
  | (Gate.And | Gate.Or | Gate.Xor | Gate.Xnor) as k ->
    invalid_arg
      (Printf.sprintf
         "Transistor.topology: %s is not a single CMOS stage; run \
          Transform.to_nand_inv first"
         (Gate.to_string k))

(* Flatten the supported shapes. [chain] is ordered supply-side first,
   output-side last; [parallel] devices all touch both rails of the stage. *)
type shape =
  | Chain of int list (* pin indices, supply -> output *)
  | Par of int list

let shape_of = function
  | Device p -> Chain [ p ]
  | Series nets ->
    (* Series [d0; ...; dk] is written output-side first (pin 0 at the
       output, like figure 1's N3..N1 stack); flip to supply-first *)
    List.rev_map (function Device p -> p | _ -> invalid_arg "Transistor: nested network") nets
    |> fun pins -> Chain pins
  | Parallel nets ->
    Par (List.map (function Device p -> p | _ -> invalid_arg "Transistor: nested network") nets)

let pins_of = function Chain pins | Par pins -> pins

(* output-adjacent devices: their drains load the gate's output node *)
let output_adjacent = function
  | Chain pins -> [ List.nth pins (List.length pins - 1) ]
  | Par pins -> pins

let roots = function
  | Chain pins -> [ List.hd pins ]
  | Par pins -> pins

let leaves = function
  | Chain pins -> [ List.nth pins (List.length pins - 1) ]
  | Par pins -> pins

(* vertex numbering: gates in node order; per gate all NMOS devices (pin
   order) then all PMOS devices *)
let layout nl =
  let base = Hashtbl.create (Netlist.node_count nl) in
  let next = ref 0 in
  Netlist.iter_gates nl (fun v ->
      Hashtbl.add base v !next;
      next := !next + (2 * List.length (Netlist.fanins nl v)));
  (base, !next)

let arity_of nl v = List.length (Netlist.fanins nl v)

let nmos_vertex base nl v pin =
  ignore nl;
  Hashtbl.find base v + pin

let pmos_vertex base nl v pin = Hashtbl.find base v + arity_of nl v + pin

let vertices_of_gate (_ : Tech.t) nl v =
  let base, _ = layout nl in
  let k = arity_of nl v in
  List.init (2 * k) (fun d -> Hashtbl.find base v + d)

let of_netlist (tech : Tech.t) nl =
  Netlist.validate nl;
  let base, n = layout nl in
  let graph = Digraph.create ~nodes_hint:n () in
  if n > 0 then ignore (Digraph.add_nodes graph n);
  let a_self = Array.make n 0.0 in
  let a_acc : (int, float) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let b = Array.make n 0.0 in
  let is_sink = Array.make n false in
  let block = Array.make n 0 in
  let labels = Array.make n "" in
  let add_a i j x =
    if j = i then a_self.(i) <- a_self.(i) +. x
    else
      Hashtbl.replace a_acc.(i) j
        (x +. Option.value ~default:0.0 (Hashtbl.find_opt a_acc.(i) j))
  in
  (* the two networks of every gate, as shapes, pin -> vertex resolved *)
  let shapes v =
    match Netlist.kind nl v with
    | Netlist.Gate k ->
      let pd, pu = topology k ~arity:(arity_of nl v) in
      (shape_of pd, shape_of pu)
    | Netlist.Input -> assert false
  in
  (* pin capacitance terms on a wire driven by gate v: the NMOS and PMOS
     gates of every connected pin of every fanout gate *)
  let receiving_devices v =
    List.concat_map
      (fun w ->
        List.concat
          (List.mapi
             (fun pin f ->
               if f = v then [ nmos_vertex base nl w pin; pmos_vertex base nl w pin ]
               else [])
             (Netlist.fanins nl w)))
      (List.sort_uniq compare (Netlist.fanouts nl v))
  in
  Netlist.iter_gates nl (fun v ->
      let pd, pu = shapes v in
      let k = arity_of nl v in
      let name = Netlist.node_name nl v in
      let fanout_count = List.length (Netlist.fanouts nl v) in
      let fixed_out_cap =
        (tech.c_wire *. float_of_int fanout_count)
        +. if Netlist.is_output nl v then tech.c_load else 0.0
      in
      let recv = receiving_devices v in
      (* per-network coefficient generation *)
      let emit ~own ~other ~r ~vertex_of ~other_vertex_of =
        let own_pins = pins_of own in
        let out_adj_other = output_adjacent other in
        let emit_output_node_into i =
          (* C_out: own output-adjacent drains handled by callers; shared
             terms: other network's output-adjacent drains, wire + load,
             receiving pins *)
          List.iter (fun p -> add_a i (other_vertex_of p) (r *. tech.c_drain)) out_adj_other;
          b.(i) <- b.(i) +. (r *. fixed_out_cap);
          List.iter (fun j -> add_a i j (r *. tech.c_gate)) recv
        in
        match own with
        | Par _ ->
          (* each device discharges alone; output node carries all sibling
             drains *)
          List.iter
            (fun p ->
              let i = vertex_of p in
              List.iter (fun q -> add_a i (vertex_of q) (r *. tech.c_drain)) own_pins;
              emit_output_node_into i)
            own_pins
        | Chain pins ->
          (* supply-first chain s_1 .. s_k; internal node j between s_j and
             s_{j+1} has cap c_d (x_j + x_{j+1}); vertex m collects nodes
             j >= m (Eq. 2/3) *)
          let arr = Array.of_list pins in
          let kk = Array.length arr in
          for m = 0 to kk - 1 do
            let i = vertex_of arr.(m) in
            for j = m to kk - 2 do
              add_a i (vertex_of arr.(j)) (r *. tech.c_drain);
              add_a i (vertex_of arr.(j + 1)) (r *. tech.c_drain)
            done;
            (* output node: own top drain *)
            add_a i (vertex_of arr.(kk - 1)) (r *. tech.c_drain);
            emit_output_node_into i
          done
      in
      let nv p = nmos_vertex base nl v p and pv p = pmos_vertex base nl v p in
      emit ~own:pd ~other:pu ~r:tech.r_n ~vertex_of:nv ~other_vertex_of:pv;
      emit ~own:pu ~other:pd ~r:tech.r_p ~vertex_of:pv ~other_vertex_of:nv;
      (* labels, blocks, sinks *)
      for p = 0 to k - 1 do
        labels.(nv p) <- Printf.sprintf "%s/N%d" name p;
        labels.(pv p) <- Printf.sprintf "%s/P%d" name p;
        block.(nv p) <- v;
        block.(pv p) <- v
      done;
      if Netlist.is_output nl v then
        List.iter
          (fun (sh, vertex_of) ->
            List.iter (fun p -> is_sink.(vertex_of p) <- true) (leaves sh))
          [ (pd, nv); (pu, pv) ];
      (* intra-gate chain edges: supply side -> output side *)
      let chain_edges sh vertex_of =
        match sh with
        | Par _ -> ()
        | Chain pins ->
          let arr = Array.of_list pins in
          for j = 0 to Array.length arr - 2 do
            ignore (Digraph.add_edge graph (vertex_of arr.(j)) (vertex_of arr.(j + 1)))
          done
      in
      chain_edges pd nv;
      chain_edges pu pv;
      (* cross-gate edges: NMOS leaves drive the receivers' PMOS roots and
         vice versa (falling output turns on PMOS downstream) *)
      List.iter
        (fun w ->
          let wpd, wpu = shapes w in
          List.iteri
            (fun pin f ->
              if f = v then begin
                let reach_roots sh pin =
                  match sh with Chain _ -> roots sh | Par _ -> [ pin ]
                in
                List.iter
                  (fun src_pin ->
                    List.iter
                      (fun dst_pin ->
                        ignore
                          (Digraph.add_edge graph (nmos_vertex base nl v src_pin)
                             (pmos_vertex base nl w dst_pin)))
                      (reach_roots wpu pin))
                  (leaves pd);
                List.iter
                  (fun src_pin ->
                    List.iter
                      (fun dst_pin ->
                        ignore
                          (Digraph.add_edge graph (pmos_vertex base nl v src_pin)
                             (nmos_vertex base nl w dst_pin)))
                      (reach_roots wpd pin))
                  (leaves pu)
              end)
            (Netlist.fanins nl w))
        (List.sort_uniq compare (Netlist.fanouts nl v)));
  let a_coeffs =
    Array.map (fun h -> Array.of_seq (Hashtbl.to_seq h)) a_acc
  in
  let model : Delay_model.t =
    { graph; a_self; a_coeffs; b;
      area_weight = Array.make n 1.0;
      is_sink; block; labels;
      min_size = tech.min_size; max_size = tech.max_size }
  in
  Delay_model.validate model;
  model
