lib/tech/transistor.mli: Delay_model Minflo_netlist Tech
