lib/tech/elmore.ml: Array Delay_model Fun Gate_model Hashtbl List Minflo_graph Minflo_netlist Option Seq Tech
