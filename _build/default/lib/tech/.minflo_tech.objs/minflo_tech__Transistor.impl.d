lib/tech/transistor.ml: Array Delay_model Hashtbl List Minflo_graph Minflo_netlist Option Printf Tech
