lib/tech/delay_model.mli: Minflo_graph
