lib/tech/tech.ml: Printf
