lib/tech/elmore.mli: Delay_model Gate_model Hashtbl Minflo_netlist Tech
