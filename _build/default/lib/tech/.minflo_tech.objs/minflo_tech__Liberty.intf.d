lib/tech/liberty.mli: Gate_model Minflo_netlist Tech
