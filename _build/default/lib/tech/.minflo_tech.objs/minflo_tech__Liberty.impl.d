lib/tech/liberty.ml: Buffer Float Fun Gate_model List Minflo_netlist Option Printf String Tech
