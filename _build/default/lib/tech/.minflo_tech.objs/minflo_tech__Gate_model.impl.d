lib/tech/gate_model.ml: Minflo_netlist Tech
