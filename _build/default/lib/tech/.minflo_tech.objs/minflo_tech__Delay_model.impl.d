lib/tech/delay_model.ml: Array Fun Hashtbl Minflo_graph Printf
