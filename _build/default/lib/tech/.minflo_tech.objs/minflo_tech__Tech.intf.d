lib/tech/tech.mli:
