lib/tech/gate_model.mli: Minflo_netlist Tech
