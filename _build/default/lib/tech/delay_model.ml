module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo

type t = {
  graph : Digraph.t;
  a_self : float array;
  a_coeffs : (int * float) array array;
  b : float array;
  area_weight : float array;
  is_sink : bool array;
  block : int array;
  labels : string array;
  min_size : float;
  max_size : float;
}

let num_vertices t = Digraph.node_count t.graph

let delay t x i =
  let acc = ref t.b.(i) in
  Array.iter (fun (j, a) -> acc := !acc +. (a *. x.(j))) t.a_coeffs.(i);
  t.a_self.(i) +. (!acc /. x.(i))

let delays t x = Array.init (num_vertices t) (delay t x)

let area t x =
  let acc = ref 0.0 in
  Array.iteri (fun i w -> acc := !acc +. (w *. x.(i))) t.area_weight;
  !acc

let uniform_sizes t s = Array.make (num_vertices t) s

let rec validate t =
  let n = num_vertices t in
  let check_len name len =
    if len <> n then invalid_arg (Printf.sprintf "Delay_model: %s length %d <> %d" name len n)
  in
  check_len "a_self" (Array.length t.a_self);
  check_len "a_coeffs" (Array.length t.a_coeffs);
  check_len "b" (Array.length t.b);
  check_len "area_weight" (Array.length t.area_weight);
  check_len "is_sink" (Array.length t.is_sink);
  check_len "block" (Array.length t.block);
  check_len "labels" (Array.length t.labels);
  if not (Topo.is_dag t.graph) then invalid_arg "Delay_model: graph has a cycle";
  if t.min_size <= 0.0 || t.max_size < t.min_size then
    invalid_arg "Delay_model: bad size bounds";
  if not (Array.exists Fun.id t.is_sink) then invalid_arg "Delay_model: no sink vertex";
  Array.iteri
    (fun i coeffs ->
      if t.a_self.(i) < 0.0 || t.b.(i) < 0.0 then
        invalid_arg (Printf.sprintf "Delay_model: negative coefficient at vertex %d" i);
      Array.iter
        (fun (j, a) ->
          if a < 0.0 then
            invalid_arg (Printf.sprintf "Delay_model: negative a[%d][%d]" i j);
          if j = i then
            invalid_arg (Printf.sprintf "Delay_model: self coefficient %d in a_coeffs" i))
        coeffs)
    t.a_coeffs;
  (* block upper-triangularity: the block quotient of (graph union
     coefficient dependencies) must be acyclic *)
  ignore (elimination_blocks t)

and elimination_blocks t =
  let n = num_vertices t in
  (* compress block ids *)
  let block_id = Hashtbl.create 64 in
  let nblocks = ref 0 in
  let bid v =
    let b = t.block.(v) in
    match Hashtbl.find_opt block_id b with
    | Some id -> id
    | None ->
      let id = !nblocks in
      Hashtbl.add block_id b id;
      incr nblocks;
      id
  in
  let vb = Array.init n bid in
  let q = Digraph.create ~nodes_hint:!nblocks () in
  ignore (Digraph.add_nodes q !nblocks);
  let edge_seen = Hashtbl.create 256 in
  let add_q u v =
    if u <> v && not (Hashtbl.mem edge_seen (u, v)) then begin
      Hashtbl.add edge_seen (u, v) ();
      ignore (Digraph.add_edge q u v)
    end
  in
  Digraph.iter_edges t.graph (fun e ->
      add_q vb.(Digraph.src t.graph e) vb.(Digraph.dst t.graph e));
  Array.iteri (fun i coeffs -> Array.iter (fun (j, _) -> add_q vb.(i) vb.(j)) coeffs) t.a_coeffs;
  let order =
    match Topo.sort_opt q with
    | Some o -> o
    | None ->
      invalid_arg "Delay_model: coefficient structure is not block upper triangular"
  in
  let members = Array.make !nblocks [] in
  for v = n - 1 downto 0 do
    members.(vb.(v)) <- v :: members.(vb.(v))
  done;
  Array.map (fun blockv -> Array.of_list members.(blockv)) order

let check_sizes t x =
  if Array.length x <> num_vertices t then Error "wrong size-vector length"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i xi ->
        if not (xi >= t.min_size && xi <= t.max_size) then
          bad := Some (Printf.sprintf "x[%d] = %g out of [%g, %g]" i xi t.min_size t.max_size))
      x;
    match !bad with Some e -> Error e | None -> Ok ()
  end
