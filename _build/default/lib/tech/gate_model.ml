module Gate = Minflo_netlist.Gate

type t = {
  r_drive : float;
  c_input : float;
  c_parasitic : float;
  transistors : int;
}

let of_gate (tech : Tech.t) kind ~arity =
  let n = arity in
  let inv_r = max tech.r_n (tech.r_p /. tech.p_ratio) in
  (* series stacks: k devices in series k-uples the resistance; the parallel
     network contributes its single worst device *)
  let nand_r k = max (float_of_int k *. tech.r_n) (tech.r_p /. tech.p_ratio) in
  let nor_r k = max tech.r_n (float_of_int k *. tech.r_p /. tech.p_ratio) in
  let pin_c = tech.c_gate *. (1.0 +. tech.p_ratio) in
  let out_c stack = tech.c_drain *. (1.0 +. tech.p_ratio) *. stack in
  match kind with
  | Gate.Not ->
    { r_drive = inv_r; c_input = pin_c; c_parasitic = out_c 1.0; transistors = 2 }
  | Gate.Buf ->
    (* two cascaded inverters; drive comes from the second stage *)
    { r_drive = inv_r; c_input = pin_c; c_parasitic = out_c 1.0; transistors = 4 }
  | Gate.Nand ->
    { r_drive = nand_r n; c_input = pin_c; c_parasitic = out_c 1.2; transistors = 2 * n }
  | Gate.Nor ->
    { r_drive = nor_r n; c_input = pin_c; c_parasitic = out_c 1.2; transistors = 2 * n }
  | Gate.And ->
    (* NAND stage + output inverter: drive of the inverter, pin load of the
       NAND stage *)
    { r_drive = inv_r; c_input = pin_c; c_parasitic = out_c 1.0; transistors = (2 * n) + 2 }
  | Gate.Or ->
    { r_drive = inv_r; c_input = pin_c; c_parasitic = out_c 1.0; transistors = (2 * n) + 2 }
  | Gate.Xor | Gate.Xnor ->
    (* transmission-gate style: each input loads two pairs; drive roughly an
       inverter through a pass stage *)
    { r_drive = 2.0 *. inv_r;
      c_input = 2.0 *. pin_c;
      c_parasitic = out_c 1.5;
      transistors = 4 * n }
