(* True transistor sizing (the general problem of Section 2, not the
   gate-sizing special case used in the paper's tables).

   Every static CMOS gate is expanded into its pullup/pulldown networks
   with one size variable per transistor (figures 1-2 of the paper); the
   same D-phase/W-phase machinery then sizes each device independently —
   e.g. the transistors of one NAND stack get *different* widths, which
   gate sizing cannot express.

   Run with: dune exec examples/transistor_sizing.exe *)

open Minflo

let () =
  let tech = Tech.default_130nm in
  let nl = Generators.c17 () in

  (* gate-level reference *)
  let gmodel = Elmore.of_netlist tech nl in
  let gd0 = Sweep.dmin gmodel in
  let gr = Minflotransit.optimize gmodel ~target:(0.5 *. gd0) in

  (* transistor-level: c17 is NAND-only, so no remapping is needed; for
     arbitrary circuits call Transform.to_nand_inv first *)
  let tmodel = Transistor.of_netlist tech nl in
  let td0 = Sweep.dmin tmodel in
  let tr = Minflotransit.optimize tmodel ~target:(0.5 *. td0) in

  Printf.printf "c17 at half the minimum-size delay:\n";
  Printf.printf "  gate sizing:       %3d variables, area %8.2f, saving %.2f%%\n"
    (Delay_model.num_vertices gmodel) gr.area gr.area_saving_pct;
  Printf.printf "  transistor sizing: %3d variables, area %8.2f, saving %.2f%%\n"
    (Delay_model.num_vertices tmodel) tr.area tr.area_saving_pct;

  (* show the per-device widths of one gate: the NMOS stack tapers *)
  Printf.printf "\nper-transistor widths of gate 22 (output NAND):\n";
  Array.iteri
    (fun i label ->
      if String.length label >= 3 && String.sub label 0 3 = "22/" then
        Printf.printf "  %-8s %.3f\n" label tr.sizes.(i))
    tmodel.Delay_model.labels;
  Printf.printf
    "\nDistinct widths inside one stack are exactly what transistor sizing\n\
     buys over gate sizing (Section 1, point 2 of the paper).\n"
