(* Quickstart: build a circuit through the public API, size it with TILOS
   and with MINFLOTRANSIT, and compare.

   Run with: dune exec examples/quickstart.exe *)

open Minflo

let () =
  (* a 4-bit ripple-carry adder from the generator library *)
  let nl = Generators.ripple_carry_adder ~bits:4 () in
  Printf.printf "circuit: %s — %s\n" (Netlist.name nl)
    (Format.asprintf "%a" Netlist.pp_stats (Netlist.stats nl));

  (* derive the gate-sizing Elmore model for the default technology *)
  let tech = Tech.default_130nm in
  let model = Elmore.of_netlist tech nl in

  (* the reference points: minimum-size delay and area *)
  let dmin = Sweep.dmin model in
  let amin = Sweep.min_area model in
  Printf.printf "minimum-size delay %.4g, area %.4g\n" dmin amin;

  (* ask for twice the speed of the minimum-size circuit *)
  let target = 0.5 *. dmin in

  (* baseline: TILOS greedy sizing *)
  let tilos = Tilos.size model ~target in
  Printf.printf "TILOS:          met=%b area ratio %.3f (%d bumps)\n" tilos.met
    (tilos.area /. amin) tilos.bumps;

  (* MINFLOTRANSIT: TILOS seed + min-cost-flow D-phase / SMP W-phase *)
  let r = Minflotransit.optimize model ~target in
  Printf.printf "MINFLOTRANSIT:  met=%b area ratio %.3f (%d iterations)\n" r.met
    (r.area /. amin) r.iterations;
  Printf.printf "area saving over TILOS: %.2f%%\n" r.area_saving_pct;

  (* the optimized sizes are plain floats indexed like the model's vertices *)
  Printf.printf "three largest gates after optimization:\n";
  let order = Array.init (Delay_model.num_vertices model) Fun.id in
  Array.sort (fun i j -> compare r.sizes.(j) r.sizes.(i)) order;
  Array.iteri
    (fun k i ->
      if k < 3 then
        Printf.printf "  %-12s size %.2f\n" model.Delay_model.labels.(i) r.sizes.(i))
    order
