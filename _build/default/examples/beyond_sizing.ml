(* Beyond sizing: the same machinery, three neighboring problems.

   The D-phase of MINFLOTRANSIT is an FSDU-displacement LP — the dual of a
   min-cost flow — borrowed from retiming [10] and buffer redistribution
   [13]. This example exercises the repository's implementations of those
   neighbors on their home turf:

   1. retiming a synchronous pipeline to its minimum clock period (and
      minimizing registers via the same network-simplex dual);
   2. van Ginneken buffer insertion on an interconnect tree;
   3. the switching-power view of a sizing solution.

   Run with: dune exec examples/beyond_sizing.exe *)

open Minflo

let () =
  (* --- 1. retiming -------------------------------------------------- *)
  let t = Retiming.create ~name:"dsp-loop" () in
  let inp = Retiming.add_node t ~delay:1.0 "in" in
  let mul = Retiming.add_node t ~delay:8.0 "mul" in
  let add = Retiming.add_node t ~delay:4.0 "add" in
  let out = Retiming.add_node t ~delay:1.0 "out" in
  Retiming.add_edge t inp mul ~registers:0;
  Retiming.add_edge t mul add ~registers:0;
  Retiming.add_edge t add out ~registers:0;
  Retiming.add_edge t add add ~registers:1;
  Printf.printf "pipeline period before retiming: %.1f\n" (Retiming.clock_period t);
  let p = Retiming.min_period t in
  (match Retiming.min_registers t ~period:p with
  | Ok r ->
    let t' = Retiming.apply t r in
    Printf.printf
      "after retiming (min-cost-flow dual): period %.1f with %d registers\n"
      (Retiming.clock_period t') (Retiming.total_registers t')
  | Error e -> Printf.printf "retiming failed: %s\n" e);

  (* --- 2. buffer insertion ------------------------------------------ *)
  let tech = Tech.default_130nm in
  let buf = Van_ginneken.buffer_of_tech tech in
  let rec line k =
    if k = 0 then Van_ginneken.Sink { name = "load"; cap = 6.0; rat = 0.0 }
    else Van_ginneken.Wire ({ Van_ginneken.r = 400.0; c = 8.0 }, line (k - 1))
  in
  let net = line 16 in
  let bare = Van_ginneken.unbuffered_rat ~driver_r:2000.0 net in
  (match Van_ginneken.best_rat ~driver_r:2000.0 (Van_ginneken.solve ~buffers:[ buf ] net) with
  | Some (best, cand) ->
    Printf.printf
      "16-segment wire: required time improves %.3g -> %.3g with %d buffers\n"
      bare best
      (List.length cand.placements)
  | None -> print_endline "no buffering candidates");

  (* --- 3. power ------------------------------------------------------ *)
  let nl = Iscas85.circuit "c432" in
  let model = Elmore.of_netlist tech nl in
  let target = 0.5 *. Sweep.dmin model in
  let r = Minflotransit.optimize model ~target in
  let act = Activity.estimate ~patterns:1024 ~seed:1 nl in
  let p_min = Power.min_size_baseline tech nl ~activity:act in
  let p_opt = Power.dynamic tech nl ~activity:act ~sizes:r.sizes in
  Printf.printf
    "c432 sized to 0.5 Dmin: switching power %.2fx the minimum-size circuit\n"
    (p_opt.total /. p_min.total)
