examples/beyond_sizing.mli:
