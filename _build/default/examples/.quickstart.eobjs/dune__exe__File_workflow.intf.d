examples/file_workflow.mli:
