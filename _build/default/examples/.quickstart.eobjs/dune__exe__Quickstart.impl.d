examples/quickstart.ml: Array Delay_model Elmore Format Fun Generators Minflo Minflotransit Netlist Printf Sweep Tech Tilos
