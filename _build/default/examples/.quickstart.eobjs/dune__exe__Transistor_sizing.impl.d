examples/transistor_sizing.ml: Array Delay_model Elmore Generators Minflo Minflotransit Printf String Sweep Tech Transistor
