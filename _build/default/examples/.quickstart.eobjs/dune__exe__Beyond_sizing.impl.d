examples/beyond_sizing.ml: Activity Elmore Iscas85 List Minflo Minflotransit Power Printf Retiming Sweep Tech Van_ginneken
