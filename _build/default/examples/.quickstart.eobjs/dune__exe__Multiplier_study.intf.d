examples/multiplier_study.mli:
