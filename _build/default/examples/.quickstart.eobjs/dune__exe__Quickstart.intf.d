examples/quickstart.mli:
