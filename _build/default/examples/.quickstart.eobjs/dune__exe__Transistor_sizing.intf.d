examples/transistor_sizing.mli:
