examples/adder_tradeoff.ml: Elmore Generators List Minflo Netlist Printf Sweep Table Tech
