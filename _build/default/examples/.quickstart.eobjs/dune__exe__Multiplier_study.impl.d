examples/multiplier_study.ml: Elmore Generators List Minflo Minflotransit Netlist Printf Sweep Table Tech
