examples/file_workflow.ml: Bench_format Check Elmore Filename Generators List Minflo Minflotransit Printf String Sweep Sys Tech Verilog_format
