(* The multiplier effect: why c6288 is the paper's headline circuit.

   Array multipliers have thousands of reconvergent, near-tied paths, so
   many paths become critical simultaneously and greedy sizing wastes area;
   the min-cost-flow D-phase reasons about all of them at once (the paper
   reports its largest saving, 16.5%, on c6288). This example shows the
   saving growing with multiplier size — an 8x8 instance keeps runtime
   example-friendly.

   Run with: dune exec examples/multiplier_study.exe *)

open Minflo

let () =
  let tech = Tech.default_130nm in
  let table =
    Table.create
      ~columns:
        [ ("multiplier", Table.Left); ("gates", Table.Right);
          ("factor", Table.Right); ("TILOS area", Table.Right);
          ("MINFLO area", Table.Right); ("saving %", Table.Right) ]
  in
  List.iter
    (fun bits ->
      let nl = Generators.array_multiplier ~style:`Nand ~bits () in
      let model = Elmore.of_netlist tech nl in
      let p = Sweep.at_factor model ~factor:0.5 in
      Table.add_row table
        [ Printf.sprintf "%dx%d" bits bits;
          string_of_int (Netlist.gate_count nl);
          "0.50";
          (if p.tilos_met then Printf.sprintf "%.3f" p.tilos_area_ratio else "unmet");
          (if p.tilos_met then Printf.sprintf "%.3f" p.minflo_area_ratio else "-");
          (if p.tilos_met then Printf.sprintf "%.2f" p.saving_pct else "-") ])
    [ 4; 6; 8 ];
  Table.print table;
  print_endline
    "Savings grow with the number of competing near-critical paths;\n\
     compare the flat ~1% of examples/adder_tradeoff.exe.";
  (* also show the convergence trace on the 8x8 instance *)
  let nl = Generators.array_multiplier ~style:`Nand ~bits:8 () in
  let model = Elmore.of_netlist tech nl in
  let target = 0.5 *. Sweep.dmin model in
  let r = Minflotransit.optimize model ~target in
  Printf.printf "\n8x8 convergence (%d iterations):\n" r.iterations;
  List.iter
    (fun (it : Minflotransit.iteration) ->
      Printf.printf "  iter %2d: area %.0f (eta %.3g)\n" it.iter it.area it.eta)
    r.trace
