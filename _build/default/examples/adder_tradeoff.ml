(* Area-delay trade-off study on ripple-carry adders (the paper's adder32 /
   adder256 rows generalized over width).

   The paper observes that adders gain little from MINFLOTRANSIT because a
   single dominant carry chain is exactly the structure greedy sizing
   handles well; this example reproduces that observation across widths.

   Run with: dune exec examples/adder_tradeoff.exe *)

open Minflo

let () =
  let tech = Tech.default_130nm in
  let table =
    Table.create
      ~columns:
        [ ("adder", Table.Left); ("gates", Table.Right); ("factor", Table.Right);
          ("TILOS area", Table.Right); ("MINFLO area", Table.Right);
          ("saving %", Table.Right); ("iters", Table.Right) ]
  in
  List.iter
    (fun bits ->
      let nl = Generators.ripple_carry_adder ~style:`Nand ~bits () in
      let model = Elmore.of_netlist tech nl in
      List.iter
        (fun factor ->
          let p = Sweep.at_factor model ~factor in
          Table.add_row table
            [ Printf.sprintf "adder%d" bits;
              string_of_int (Netlist.gate_count nl);
              Printf.sprintf "%.2f" factor;
              (if p.tilos_met then Printf.sprintf "%.3f" p.tilos_area_ratio
               else "unmet");
              (if p.tilos_met then Printf.sprintf "%.3f" p.minflo_area_ratio else "-");
              (if p.tilos_met then Printf.sprintf "%.2f" p.saving_pct else "-");
              string_of_int p.iterations ])
        [ 0.5; 0.35 ];
      Table.add_separator table)
    [ 8; 16; 32 ];
  Table.print table;
  print_endline
    "Expected shape (paper, Table 1): savings stay ~1% — a single dominant\n\
     carry chain is the easy case for greedy sizing.";
  (* contrast: a parallel-prefix adder has many balanced reconvergent paths
     (multiplier-like), so MINFLOTRANSIT finds more to save *)
  let ks = Generators.kogge_stone_adder ~bits:16 () in
  let model = Elmore.of_netlist tech ks in
  let p = Sweep.at_factor model ~factor:0.5 in
  Printf.printf
    "\nKogge-Stone 16-bit @ 0.5 Dmin (reconvergent contrast): saving %.2f%%\n"
    p.saving_pct
